//! Simulated annotators for the user-study reproduction (paper §6,
//! Figure 9).
//!
//! The paper's study measures two supervision *processes* over a 30-minute
//! budget: manually labeling candidates one at a time versus authoring
//! labeling functions iteratively. The human-factors element cannot be
//! reproduced offline, so we model the measured throughputs mechanically
//! (users labeled ~285 candidates in 30 minutes ≈ 9.5/min; they wrote ~7
//! LFs ≈ one every 4 minutes) and replay both processes against the same
//! corpus. DESIGN.md documents this substitution.

use crate::lf::{LabelingFunction, Modality};

/// The manual-annotation process: labels candidates at a fixed rate with a
/// small error probability (annotator fatigue/mistakes).
#[derive(Debug, Clone)]
pub struct ManualProcess {
    /// Candidates labeled per minute (paper: ~9.5).
    pub labels_per_minute: f64,
    /// Probability a manual label is wrong.
    pub error_rate: f64,
}

impl Default for ManualProcess {
    fn default() -> Self {
        Self {
            labels_per_minute: 9.5,
            error_rate: 0.05,
        }
    }
}

impl ManualProcess {
    /// Number of candidates labeled after `minutes`.
    pub fn labeled_after(&self, minutes: f64, n_candidates: usize) -> usize {
        ((self.labels_per_minute * minutes) as usize).min(n_candidates)
    }

    /// Produce the manual labels available at `minutes`: the first k
    /// candidates' gold labels, each flipped with `error_rate` via a
    /// deterministic hash. Returns `(index, label)` pairs.
    pub fn labels_at(&self, minutes: f64, gold: &[bool]) -> Vec<(usize, bool)> {
        let k = self.labeled_after(minutes, gold.len());
        (0..k)
            .map(|i| {
                let h = fonduer_nlp::fnv1a(&(i as u64).to_le_bytes());
                let flip = (h % 10_000) as f64 / 10_000.0 < self.error_rate;
                (i, gold[i] != flip)
            })
            .collect()
    }
}

/// The LF-authoring process: the user's LF library is revealed one function
/// at a time on a fixed cadence, mirroring the iterative develop/evaluate
/// loop of §3.3.
#[derive(Debug, Clone)]
pub struct LfProcess {
    /// Minutes between finished labeling functions (paper: ~7 LFs in 30
    /// minutes after setup).
    pub minutes_per_lf: f64,
    /// Minutes of setup before the first LF lands.
    pub setup_minutes: f64,
}

impl Default for LfProcess {
    fn default() -> Self {
        Self {
            minutes_per_lf: 3.0,
            setup_minutes: 2.0,
        }
    }
}

impl LfProcess {
    /// How many LFs of an ordered library are available after `minutes`.
    pub fn lfs_after(&self, minutes: f64, library_size: usize) -> usize {
        if minutes < self.setup_minutes {
            return 0;
        }
        (1 + ((minutes - self.setup_minutes) / self.minutes_per_lf) as usize).min(library_size)
    }

    /// The available prefix of the LF library at `minutes`.
    pub fn available<'a>(
        &self,
        minutes: f64,
        library: &'a [LabelingFunction],
    ) -> &'a [LabelingFunction] {
        &library[..self.lfs_after(minutes, library.len())]
    }
}

/// Per-modality fraction of a LF library (Figure 9, right panel).
pub fn modality_distribution(lfs: &[LabelingFunction]) -> Vec<(Modality, f64)> {
    let total = lfs.len().max(1) as f64;
    [
        Modality::Textual,
        Modality::Structural,
        Modality::Tabular,
        Modality::Visual,
    ]
    .iter()
    .map(|&m| {
        let n = lfs.iter().filter(|lf| lf.modality == m).count();
        (m, n as f64 / total)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lf::ABSTAIN;

    #[test]
    fn manual_process_rate() {
        let p = ManualProcess::default();
        assert_eq!(p.labeled_after(30.0, 100_000), 285);
        assert_eq!(p.labeled_after(30.0, 100), 100);
        assert_eq!(p.labeled_after(0.0, 100), 0);
    }

    #[test]
    fn manual_labels_mostly_match_gold() {
        let p = ManualProcess {
            labels_per_minute: 100.0,
            error_rate: 0.1,
        };
        let gold: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let labels = p.labels_at(10.0, &gold);
        assert_eq!(labels.len(), 1000);
        let wrong = labels.iter().filter(|&&(i, l)| gold[i] != l).count();
        let rate = wrong as f64 / 1000.0;
        assert!((0.05..0.15).contains(&rate), "{rate}");
        // Deterministic.
        assert_eq!(labels, p.labels_at(10.0, &gold));
    }

    #[test]
    fn lf_process_schedule() {
        let p = LfProcess::default();
        assert_eq!(p.lfs_after(0.0, 12), 0);
        assert_eq!(p.lfs_after(2.0, 12), 1);
        assert_eq!(p.lfs_after(10.0, 12), 3);
        assert_eq!(p.lfs_after(30.0, 12), 10);
        assert_eq!(p.lfs_after(30.0, 5), 5);
    }

    #[test]
    fn modality_distribution_sums_to_one() {
        let lfs = vec![
            LabelingFunction::new("a", Modality::Tabular, |_, _| ABSTAIN),
            LabelingFunction::new("b", Modality::Tabular, |_, _| ABSTAIN),
            LabelingFunction::new("c", Modality::Visual, |_, _| ABSTAIN),
            LabelingFunction::new("d", Modality::Textual, |_, _| ABSTAIN),
        ];
        let dist = modality_distribution(&lfs);
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(dist[2], (Modality::Tabular, 0.5));
    }
}
