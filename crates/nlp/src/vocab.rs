//! Hashed vocabulary for word embeddings.
//!
//! The paper uses pre-trained word embeddings (Turian et al.) as the input
//! representation Φ(s, k) of each word. We substitute a *hashed* trainable
//! vocabulary: every word deterministically maps to one of `dim` embedding
//! rows via FNV-1a hashing, so no pre-trained vectors or vocabulary files
//! are needed and out-of-vocabulary words are handled uniformly.

/// FNV-1a 64-bit hash.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fixed-size hashed vocabulary mapping words to embedding-row indices.
#[derive(Debug, Clone)]
pub struct HashedVocab {
    size: usize,
}

impl HashedVocab {
    /// Create a vocabulary with `size` buckets (must be > 0).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "vocabulary size must be positive");
        Self { size }
    }

    /// Number of buckets.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Index of a word. Case-insensitive; numbers are collapsed to a shape
    /// token (`"7"` for any integer, `"7.7"` for any decimal) so that the
    /// embedding generalizes over magnitudes.
    pub fn index(&self, word: &str) -> usize {
        let canon = Self::canonicalize(word);
        (fnv1a(canon.as_bytes()) % self.size as u64) as usize
    }

    /// Canonical form used for hashing.
    pub fn canonicalize(word: &str) -> String {
        let lower = word.to_lowercase();
        if crate::tag::is_number(&lower) {
            if lower.contains('.') {
                "7.7".to_string()
            } else {
                "7".to_string()
            }
        } else {
            lower
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let v = HashedVocab::new(1000);
        for w in ["current", "SMBT3904", "≤", "°C", ""] {
            let i = v.index(w);
            assert!(i < 1000);
            assert_eq!(i, v.index(w), "hashing must be deterministic");
        }
    }

    #[test]
    fn case_insensitive() {
        let v = HashedVocab::new(4096);
        assert_eq!(v.index("Current"), v.index("current"));
    }

    #[test]
    fn numbers_share_shape_bucket() {
        let v = HashedVocab::new(4096);
        assert_eq!(v.index("200"), v.index("435"));
        assert_eq!(v.index("0.1"), v.index("3.5"));
        assert_ne!(v.index("200"), v.index("0.1"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        HashedVocab::new(0);
    }
}
