//! End-to-end preprocessing: raw text → [`SentenceData`] ready for the
//! document builder.

use crate::sentence::split_sentences;
use crate::tag::{lemmatize, ner_tag, pos_tag};
use crate::token::tokenize;
use fonduer_datamodel::{SentenceData, Structural, WordLinguistic};

/// Preprocess one block of raw text into sentence data: split sentences,
/// tokenize, and attach linguistic attributes. Structural and visual
/// attributes are the caller's responsibility (they come from the markup
/// tree and the layout engine, not from the text).
pub fn preprocess(text: &str, structural: &Structural) -> Vec<SentenceData> {
    split_sentences(text)
        .into_iter()
        .map(|(a, b)| {
            let sent_text = &text[a..b];
            preprocess_sentence(sent_text, structural)
        })
        .collect()
}

/// Preprocess text known to be a single sentence (e.g. a table cell's
/// contents, which should not be split on periods inside part codes).
pub fn preprocess_sentence(sent_text: &str, structural: &Structural) -> SentenceData {
    let toks = tokenize(sent_text);
    fonduer_observe::counter("nlp.sentences", 1);
    fonduer_observe::counter("nlp.tokens", toks.len() as u64);
    let mut words = Vec::with_capacity(toks.len());
    let mut offsets = Vec::with_capacity(toks.len());
    let mut ling = Vec::with_capacity(toks.len());
    for (i, t) in toks.iter().enumerate() {
        ling.push(WordLinguistic {
            pos: pos_tag(&t.text, i == 0).to_string(),
            lemma: lemmatize(&t.text),
            ner: ner_tag(&t.text).to_string(),
        });
        offsets.push((t.start, t.end));
        words.push(t.text.clone());
    }
    SentenceData {
        text: sent_text.to_string(),
        words,
        char_offsets: offsets,
        ling,
        visual: None,
        structural: structural.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_tags() {
        let s = Structural::default();
        let out = preprocess("High DC current gain. Low saturation voltage.", &s);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].words[0], "High");
        assert_eq!(out[0].ling[0].pos, "JJ");
        assert_eq!(out[1].words[0], "Low");
        // Offsets are relative to each sentence's own text.
        let (a, b) = out[1].char_offsets[0];
        assert_eq!(&out[1].text[a as usize..b as usize], "Low");
    }

    #[test]
    fn single_sentence_mode_preserves_codes() {
        let s = Structural::default();
        let out = preprocess_sentence("SMBT3904...MMBT3904", &s);
        assert_eq!(out.words, vec!["SMBT3904", "...", "MMBT3904"]);
        assert_eq!(out.ling[0].ner, "CODE");
    }

    #[test]
    fn ling_lengths_match() {
        let s = Structural::default();
        for out in preprocess("VCEO 40 V. IC 200 mA.", &s) {
            assert_eq!(out.words.len(), out.ling.len());
            assert_eq!(out.words.len(), out.char_offsets.len());
        }
    }
}
