//! End-to-end preprocessing: raw text → document-builder sentences.
//!
//! Two front ends share the same splitter/tokenizer/taggers:
//!
//! * [`preprocess_into`] — the **fused ingest pass**: splits, tokenizes, and
//!   tags in one sweep, writing token spans and interned symbol ids straight
//!   into the [`DocumentBuilder`]'s arena via
//!   [`DocumentBuilder::sentence_begin`] / [`DocumentBuilder::push_token`].
//!   No per-token `String`s are created; the per-token scratch buffers live
//!   in an [`NlpScratch`] reused across sentences and documents.
//! * [`preprocess`] / [`preprocess_sentence`] — the allocating compatibility
//!   path producing [`SentenceData`] values, kept for synthetic corpora and
//!   tests that build sentences outside a builder loop.

use crate::sentence::split_sentences;
use crate::tag::{
    lemma_from_lower, lemmatize, lower_into, ner_tag, ner_tag_cached, pos_tag, pos_tag_cached,
};
use crate::token::{tokenize, tokenize_into, Token};
use fonduer_datamodel::{
    DocumentBuilder, ParagraphId, SentenceData, SentenceId, Structural, WordLinguistic,
};
use std::sync::Arc;

/// Cached telemetry counter handles, revalidated against the observe reset
/// epoch so a `fonduer_observe::reset()` between documents doesn't leave
/// increments landing in detached atomics.
struct NlpCounters {
    epoch: u64,
    sentences: fonduer_observe::Counter,
    tokens: fonduer_observe::Counter,
}

/// Reusable scratch buffers for the fused ingest pass. One instance per
/// ingest thread; every sentence reuses the same token vector and the same
/// lower-case/lemma string buffers, so steady-state tokenization and tagging
/// allocate nothing.
#[derive(Default)]
pub struct NlpScratch {
    tokens: Vec<Token>,
    lower: String,
    lemma: String,
    counters: Option<NlpCounters>,
}

impl NlpScratch {
    /// New scratch with empty buffers (they grow to the high-water mark of
    /// the documents seen and stay there).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Counter handles for the current reset epoch — two plain `fetch_add`s per
/// sentence instead of two name-keyed registry lookups.
fn resolve_counters(slot: &mut Option<NlpCounters>) -> &NlpCounters {
    let epoch = fonduer_observe::reset_epoch();
    if !matches!(slot, Some(c) if c.epoch == epoch) {
        *slot = Some(NlpCounters {
            epoch,
            sentences: fonduer_observe::Counter::named("nlp.sentences"),
            tokens: fonduer_observe::Counter::named("nlp.tokens"),
        });
    }
    slot.as_ref().expect("just populated")
}

/// Fused pass: split `text` into sentences and emit each one directly into
/// the builder's arena — tokenize, tag, intern, no intermediate
/// `SentenceData`. Structural attributes are shared by refcount across the
/// block's sentences; visual attributes can be attached afterwards with
/// [`DocumentBuilder::set_sentence_visual`].
pub fn preprocess_into(
    b: &mut DocumentBuilder,
    paragraph: ParagraphId,
    text: &str,
    structural: &Arc<Structural>,
    scratch: &mut NlpScratch,
) {
    for (a, e) in split_sentences(text) {
        preprocess_sentence_into(b, paragraph, &text[a..e], structural, scratch);
    }
}

/// Fused pass for text known to be a single sentence (e.g. a table cell's
/// contents, which should not be split on periods inside part codes).
/// Returns the id of the sentence written into the builder.
pub fn preprocess_sentence_into(
    b: &mut DocumentBuilder,
    paragraph: ParagraphId,
    sent_text: &str,
    structural: &Arc<Structural>,
    scratch: &mut NlpScratch,
) -> SentenceId {
    let NlpScratch {
        tokens,
        lower,
        lemma,
        counters,
    } = scratch;
    let sid = b.sentence_begin(paragraph, sent_text, structural.clone());
    tokenize_into(sent_text, tokens);
    let counters = resolve_counters(counters);
    counters.sentences.add(1);
    counters.tokens.add(tokens.len() as u64);
    for (i, t) in tokens.iter().enumerate() {
        let word = t.text(sent_text);
        lower_into(word, lower);
        let pos = pos_tag_cached(word, lower, i == 0);
        let ner = ner_tag_cached(word, lower);
        lemma_from_lower(lower, lemma);
        b.push_token(t.start, t.end, word, lemma, pos, ner);
    }
    sid
}

/// Preprocess one block of raw text into sentence data: split sentences,
/// tokenize, and attach linguistic attributes. Structural and visual
/// attributes are the caller's responsibility (they come from the markup
/// tree and the layout engine, not from the text).
pub fn preprocess(text: &str, structural: &Structural) -> Vec<SentenceData> {
    split_sentences(text)
        .into_iter()
        .map(|(a, b)| {
            let sent_text = &text[a..b];
            preprocess_sentence(sent_text, structural)
        })
        .collect()
}

/// Preprocess text known to be a single sentence (e.g. a table cell's
/// contents, which should not be split on periods inside part codes).
pub fn preprocess_sentence(sent_text: &str, structural: &Structural) -> SentenceData {
    let toks = tokenize(sent_text);
    fonduer_observe::counter("nlp.sentences", 1);
    fonduer_observe::counter("nlp.tokens", toks.len() as u64);
    let mut words = Vec::with_capacity(toks.len());
    let mut offsets = Vec::with_capacity(toks.len());
    let mut ling = Vec::with_capacity(toks.len());
    for (i, t) in toks.iter().enumerate() {
        let word = t.text(sent_text);
        ling.push(WordLinguistic {
            pos: pos_tag(word, i == 0).to_string(),
            lemma: lemmatize(word),
            ner: ner_tag(word).to_string(),
        });
        offsets.push((t.start, t.end));
        words.push(word.to_string());
    }
    SentenceData {
        text: sent_text.to_string(),
        words,
        char_offsets: offsets,
        ling,
        visual: None,
        structural: structural.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fonduer_datamodel::{ContextRef, DocFormat};

    #[test]
    fn splits_and_tags() {
        let s = Structural::default();
        let out = preprocess("High DC current gain. Low saturation voltage.", &s);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].words[0], "High");
        assert_eq!(out[0].ling[0].pos, "JJ");
        assert_eq!(out[1].words[0], "Low");
        // Offsets are relative to each sentence's own text.
        let (a, b) = out[1].char_offsets[0];
        assert_eq!(&out[1].text[a as usize..b as usize], "Low");
    }

    #[test]
    fn single_sentence_mode_preserves_codes() {
        let s = Structural::default();
        let out = preprocess_sentence("SMBT3904...MMBT3904", &s);
        assert_eq!(out.words, vec!["SMBT3904", "...", "MMBT3904"]);
        assert_eq!(out.ling[0].ner, "CODE");
    }

    #[test]
    fn ling_lengths_match() {
        let s = Structural::default();
        for out in preprocess("VCEO 40 V. IC 200 mA.", &s) {
            assert_eq!(out.words.len(), out.ling.len());
            assert_eq!(out.words.len(), out.char_offsets.len());
        }
    }

    /// The fused pass and the SentenceData path must produce identical
    /// sentences: same text spans, same words, same tags, same offsets.
    #[test]
    fn fused_pass_matches_sentence_data_path() {
        let text = "High DC current gain. VCEO is 40 V at 200 mA. See Fig. 3 (e.g. SMBT3904...MMBT3904, −65 … 150 °C).";
        let structural = Arc::new(Structural {
            tag: "td".into(),
            ..Structural::default()
        });

        let mut fused = DocumentBuilder::new("fused", DocFormat::Html);
        let sec = fused.section();
        let tb = fused.text_block(sec);
        let para = fused.paragraph(ContextRef::TextBlock(tb));
        let mut scratch = NlpScratch::new();
        preprocess_into(&mut fused, para, text, &structural, &mut scratch);
        let fused = fused.finish();

        let mut compat = DocumentBuilder::new("fused", DocFormat::Html);
        let sec = compat.section();
        let tb = compat.text_block(sec);
        let para = compat.paragraph(ContextRef::TextBlock(tb));
        for sd in preprocess(text, &structural) {
            compat.sentence(para, sd);
        }
        let compat = compat.finish();

        assert_eq!(fused.sentences.len(), compat.sentences.len());
        assert!(fused.sentences.len() >= 2);
        for (sf, sc) in fused.sentences.iter().zip(compat.sentences.iter()) {
            assert_eq!(sf.text(&fused), sc.text(&compat));
            assert_eq!(sf.len(), sc.len());
            assert_eq!(sf.char_offsets(&fused), sc.char_offsets(&compat));
            for i in 0..sf.len() {
                assert_eq!(sf.word(&fused, i), sc.word(&compat, i));
                assert_eq!(sf.lemma(&fused, i), sc.lemma(&compat, i));
                assert_eq!(sf.pos(&fused, i), sc.pos(&compat, i));
                assert_eq!(sf.ner(&fused, i), sc.ner(&compat, i));
            }
        }
        assert_eq!(fused.content_hash(), compat.content_hash());
    }
}
