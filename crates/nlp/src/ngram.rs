//! N-gram utilities used by matchers, throttlers, labeling functions, and
//! the feature library (feature templates default to 1-grams; see paper
//! Table 7 footnote a).

/// Produce all `n`-grams of `words` as space-joined lower-case strings.
pub fn ngrams(words: &[String], n: usize) -> Vec<String> {
    if n == 0 || words.len() < n {
        return Vec::new();
    }
    words
        .windows(n)
        .map(|w| {
            w.iter()
                .map(|s| s.to_lowercase())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// All 1..=`max_n` grams, concatenated.
pub fn up_to_ngrams(words: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        out.extend(ngrams(words, n));
    }
    out
}

/// Case-insensitive containment test used throughout labeling functions
/// (e.g. "does the word *current* appear in this cell's row?").
pub fn contains_word(haystack: &[String], needle: &str) -> bool {
    let needle = needle.to_lowercase();
    haystack.iter().any(|w| w.to_lowercase() == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_lowercase() {
        assert_eq!(
            ngrams(&w(&["Collector", "Current"]), 1),
            vec!["collector", "current"]
        );
    }

    #[test]
    fn bigrams() {
        assert_eq!(ngrams(&w(&["a", "b", "c"]), 2), vec!["a b", "b c"]);
    }

    #[test]
    fn degenerate_cases() {
        assert!(ngrams(&w(&["a"]), 2).is_empty());
        assert!(ngrams(&w(&["a"]), 0).is_empty());
        assert!(ngrams(&[], 1).is_empty());
    }

    #[test]
    fn up_to() {
        assert_eq!(up_to_ngrams(&w(&["a", "b"]), 2), vec!["a", "b", "a b"]);
    }

    #[test]
    fn containment_is_case_insensitive() {
        let h = w(&["Collector", "Current"]);
        assert!(contains_word(&h, "current"));
        assert!(contains_word(&h, "COLLECTOR"));
        assert!(!contains_word(&h, "voltage"));
    }
}
