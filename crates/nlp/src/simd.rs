//! SIMD-assisted byte-class scanning for the tokenizer and sentence
//! splitter.
//!
//! The tokenizer's hot loops are runs: "consume ASCII digits", "consume
//! ASCII word characters", "skip ASCII whitespace", "find the next sentence
//! terminator". This module provides run scanners at three widths:
//!
//! * a scalar tail loop (always);
//! * a SWAR path that tests 8 bytes per step with branch-free `u64`
//!   byte-lane arithmetic (the portable "generic" path);
//! * an AVX2 path behind `#[target_feature]` that tests 32 bytes per step
//!   with vector compares + `movemask`, selected at runtime via CPUID
//!   (honoring `FONDUER_NO_AVX2`), following the same dispatch pattern as
//!   `fonduer-tensor`'s kernel shims.
//!
//! All paths classify *ASCII* byte classes only; any byte ≥ 0x80 terminates
//! a run and is handed back to the caller's scalar char decoder. Because
//! classification is exact per byte, every path returns bit-identical run
//! boundaries — a parity test tokenizes adversarial and random inputs under
//! both paths and asserts equality.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// 0 = undetected, 1 = generic (SWAR) path, 2 = AVX2 path.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX2 scanners should be used. First call performs CPUID
/// detection (honoring `FONDUER_NO_AVX2` as an opt-out for debugging);
/// later calls are one relaxed load.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_enabled() -> bool {
    match STATE.load(Relaxed) {
        0 => {
            let on = std::arch::is_x86_feature_detected!("avx2")
                && std::env::var_os("FONDUER_NO_AVX2").is_none();
            STATE.store(if on { 2 } else { 1 }, Relaxed);
            on
        }
        s => s == 2,
    }
}

/// Which tokenizer scan path is active: `"avx2"` or `"generic"`.
pub fn simd_level() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_enabled() {
            return "avx2";
        }
    }
    "generic"
}

/// Test hook: force the generic SWAR path (`true`) or re-run detection on
/// the next scan (`false`). Used by the bitwise path-parity tests.
#[doc(hidden)]
pub fn force_generic(on: bool) {
    STATE.store(if on { 1 } else { 0 }, Relaxed);
}

// ---------------------------------------------------------------------------
// Byte classes
// ---------------------------------------------------------------------------

/// ASCII whitespace in the sense of `char::is_whitespace`: HT, LF, VT, FF,
/// CR, space.
#[inline]
pub(crate) fn is_ascii_ws(b: u8) -> bool {
    matches!(b, 0x09..=0x0d | b' ')
}

/// ASCII word characters: `[0-9A-Za-z_]`.
#[inline]
pub(crate) fn is_ascii_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[inline]
fn is_terminator(b: u8) -> bool {
    matches!(b, b'.' | b'!' | b'?')
}

// ---------------------------------------------------------------------------
// SWAR lane arithmetic. Each helper sets the high bit of every byte lane
// that satisfies the predicate; lanes with byte >= 0x80 are never flagged,
// so non-ASCII bytes always terminate a run.
// ---------------------------------------------------------------------------

const ONES: u64 = 0x0101_0101_0101_0101;
const HIGH: u64 = 0x8080_8080_8080_8080;

#[inline]
fn splat(b: u8) -> u64 {
    ONES * u64::from(b)
}

/// High bit set in each lane whose byte is `< n` (requires `n <= 0x80`;
/// lanes >= 0x80 are never flagged). ORing in the lane high bits before the
/// subtraction keeps every lane >= 0x80 >= n, so no borrow ever crosses a
/// lane boundary and the test is exact per lane — the textbook
/// `(x - n·ONES) & ~x & HIGH` form is only exact up to the first true hit,
/// because a borrow out of a matching lane falsely flags the lane above it.
#[inline]
fn lt(x: u64, n: u8) -> u64 {
    !(x | HIGH).wrapping_sub(splat(n)) & !x & HIGH
}

/// High bit set in each lane equal to `b` (requires `b < 0x80`). Same
/// borrow-isolation trick as [`lt`]: `(v | HIGH) - 1` keeps lanes
/// independent, and its high bit clears exactly when `v == 0`.
#[inline]
fn eq(x: u64, b: u8) -> u64 {
    let v = x ^ splat(b);
    !(v | HIGH).wrapping_sub(ONES) & !v & HIGH
}

/// High bit set in each lane whose byte is in `lo..=hi` (ASCII bounds).
#[inline]
fn in_range(x: u64, lo: u8, hi: u8) -> u64 {
    lt(x, hi + 1) & !lt(x, lo)
}

#[inline]
fn word_lanes(x: u64) -> u64 {
    in_range(x, b'0', b'9') | in_range(x, b'A', b'Z') | in_range(x, b'a', b'z') | eq(x, b'_')
}

#[inline]
fn digit_lanes(x: u64) -> u64 {
    in_range(x, b'0', b'9')
}

#[inline]
fn ws_lanes(x: u64) -> u64 {
    in_range(x, 0x09, 0x0d) | eq(x, b' ')
}

#[inline]
fn terminator_lanes(x: u64) -> u64 {
    eq(x, b'.') | eq(x, b'!') | eq(x, b'?')
}

#[inline]
fn load8(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap())
}

macro_rules! swar_run {
    ($bytes:ident, $i:ident, $lanes:ident, $scalar:expr) => {{
        while $i + 8 <= $bytes.len() {
            let miss = $lanes(load8($bytes, $i)) ^ HIGH;
            if miss != 0 {
                return $i + (miss.trailing_zeros() / 8) as usize;
            }
            $i += 8;
        }
        #[allow(clippy::redundant_closure_call)]
        while $i < $bytes.len() && $scalar($bytes[$i]) {
            $i += 1;
        }
        $i
    }};
}

fn word_run_end_swar(bytes: &[u8], mut i: usize) -> usize {
    swar_run!(bytes, i, word_lanes, is_ascii_word)
}

fn digit_run_end_swar(bytes: &[u8], mut i: usize) -> usize {
    swar_run!(bytes, i, digit_lanes, |b: u8| b.is_ascii_digit())
}

fn ws_run_end_swar(bytes: &[u8], mut i: usize) -> usize {
    swar_run!(bytes, i, ws_lanes, is_ascii_ws)
}

fn find_terminator_swar(bytes: &[u8], mut i: usize) -> usize {
    while i + 8 <= bytes.len() {
        let hit = terminator_lanes(load8(bytes, i));
        if hit != 0 {
            return i + (hit.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < bytes.len() && !is_terminator(bytes[i]) {
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// AVX2 shims: 32 bytes per step via vector compares + movemask. Unsigned
// range tests use the min/max idiom (`b >= lo  ⇔  max(b, lo) == b`), which
// classifies bytes >= 0x80 correctly without bias tricks.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn range_mask(v: __m256i, lo: u8, hi: u8) -> __m256i {
        let ge = _mm256_cmpeq_epi8(v, _mm256_max_epu8(v, _mm256_set1_epi8(lo as i8)));
        let le = _mm256_cmpeq_epi8(v, _mm256_min_epu8(v, _mm256_set1_epi8(hi as i8)));
        _mm256_and_si256(ge, le)
    }

    #[inline]
    unsafe fn eq_mask(v: __m256i, b: u8) -> __m256i {
        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b as i8))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn word_run_end(bytes: &[u8], mut i: usize) -> usize {
        while i + 32 <= bytes.len() {
            let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
            let d = range_mask(v, b'0', b'9');
            let up = range_mask(v, b'A', b'Z');
            let lo = range_mask(v, b'a', b'z');
            let us = eq_mask(v, b'_');
            let class = _mm256_or_si256(_mm256_or_si256(d, up), _mm256_or_si256(lo, us));
            let stop = !(_mm256_movemask_epi8(class) as u32);
            if stop != 0 {
                return i + stop.trailing_zeros() as usize;
            }
            i += 32;
        }
        super::word_run_end_swar(bytes, i)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn digit_run_end(bytes: &[u8], mut i: usize) -> usize {
        while i + 32 <= bytes.len() {
            let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
            let class = range_mask(v, b'0', b'9');
            let stop = !(_mm256_movemask_epi8(class) as u32);
            if stop != 0 {
                return i + stop.trailing_zeros() as usize;
            }
            i += 32;
        }
        super::digit_run_end_swar(bytes, i)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ws_run_end(bytes: &[u8], mut i: usize) -> usize {
        while i + 32 <= bytes.len() {
            let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
            let class = _mm256_or_si256(range_mask(v, 0x09, 0x0d), eq_mask(v, b' '));
            let stop = !(_mm256_movemask_epi8(class) as u32);
            if stop != 0 {
                return i + stop.trailing_zeros() as usize;
            }
            i += 32;
        }
        super::ws_run_end_swar(bytes, i)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn find_terminator(bytes: &[u8], mut i: usize) -> usize {
        while i + 32 <= bytes.len() {
            let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
            let class = _mm256_or_si256(
                _mm256_or_si256(eq_mask(v, b'.'), eq_mask(v, b'!')),
                eq_mask(v, b'?'),
            );
            let hit = _mm256_movemask_epi8(class) as u32;
            if hit != 0 {
                return i + hit.trailing_zeros() as usize;
            }
            i += 32;
        }
        super::find_terminator_swar(bytes, i)
    }
}

macro_rules! dispatch {
    ($name:ident, $swar:ident, $lanes:ident, $invert:expr, $doc:literal) => {
        #[doc = $doc]
        #[inline]
        pub(crate) fn $name(bytes: &[u8], i: usize) -> usize {
            #[cfg(target_arch = "x86_64")]
            {
                // Hybrid: probe the first 8 bytes with one SWAR step before
                // going wide. Most tokenizer runs (a word, a single space)
                // end inside that block, where an AVX2 load + three vector
                // compares costs more than it saves; only runs that survive
                // the probe switch to 32-byte steps. The 40-byte floor
                // guarantees at least one full vector block after the probe.
                if bytes.len() - i >= 40 && avx2_enabled() {
                    let lanes = $lanes(load8(bytes, i));
                    let stop = if $invert { lanes ^ HIGH } else { lanes };
                    if stop != 0 {
                        return i + (stop.trailing_zeros() / 8) as usize;
                    }
                    // SAFETY: avx2_enabled() gates on runtime CPUID.
                    return unsafe { avx2::$name(bytes, i + 8) };
                }
            }
            $swar(bytes, i)
        }
    };
}

dispatch!(
    word_run_end,
    word_run_end_swar,
    word_lanes,
    true,
    "First index `>= i` whose byte is not an ASCII word character \
     (`[0-9A-Za-z_]`), or `bytes.len()`."
);
dispatch!(
    digit_run_end,
    digit_run_end_swar,
    digit_lanes,
    true,
    "First index `>= i` whose byte is not an ASCII digit, or `bytes.len()`."
);
dispatch!(
    ws_run_end,
    ws_run_end_swar,
    ws_lanes,
    true,
    "First index `>= i` whose byte is not ASCII whitespace, or \
     `bytes.len()`."
);
dispatch!(
    find_terminator,
    find_terminator_swar,
    terminator_lanes,
    false,
    "First index `>= i` whose byte is a sentence terminator (`.`, `!`, \
     `?`), or `bytes.len()`."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_run(bytes: &[u8], mut i: usize, pred: fn(u8) -> bool) -> usize {
        while i < bytes.len() && pred(bytes[i]) {
            i += 1;
        }
        i
    }

    /// Deterministic pseudo-random byte soup spanning all classes.
    fn soup(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Mostly ASCII, occasionally high bytes.
            let b = (state % 160) as u8;
            out.push(if b >= 128 { 0xce } else { b });
        }
        out
    }

    #[test]
    fn swar_runs_match_scalar_on_byte_soup() {
        for seed in 0..8u64 {
            let bytes = soup(seed, 257);
            for start in 0..bytes.len() {
                assert_eq!(
                    word_run_end_swar(&bytes, start),
                    scalar_run(&bytes, start, is_ascii_word),
                    "word run at {start}, seed {seed}"
                );
                assert_eq!(
                    digit_run_end_swar(&bytes, start),
                    scalar_run(&bytes, start, |b| b.is_ascii_digit()),
                    "digit run at {start}, seed {seed}"
                );
                assert_eq!(
                    ws_run_end_swar(&bytes, start),
                    scalar_run(&bytes, start, is_ascii_ws),
                    "ws run at {start}, seed {seed}"
                );
                assert_eq!(
                    find_terminator_swar(&bytes, start),
                    scalar_run(&bytes, start, |b| !matches!(b, b'.' | b'!' | b'?')),
                    "terminator scan at {start}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn dispatched_runs_match_swar() {
        // On AVX2 hosts this exercises the vector path against SWAR; on
        // others it is a self-check.
        for seed in 8..12u64 {
            let bytes = soup(seed, 300);
            for start in 0..bytes.len() {
                assert_eq!(
                    word_run_end(&bytes, start),
                    word_run_end_swar(&bytes, start)
                );
                assert_eq!(
                    digit_run_end(&bytes, start),
                    digit_run_end_swar(&bytes, start)
                );
                assert_eq!(ws_run_end(&bytes, start), ws_run_end_swar(&bytes, start));
                assert_eq!(
                    find_terminator(&bytes, start),
                    find_terminator_swar(&bytes, start)
                );
            }
        }
        assert!(matches!(simd_level(), "avx2" | "generic"));
    }

    #[test]
    fn lane_arithmetic_edge_bytes() {
        // 0x80-adjacent bytes must never be classified into any ASCII class.
        let bytes = [0x7f, 0x80, 0xff, b'a', b'0', b' ', b'.', 0x00];
        assert_eq!(word_run_end_swar(&bytes, 0), 0);
        assert_eq!(word_run_end_swar(&bytes, 3), 5);
        assert_eq!(digit_run_end_swar(&bytes, 4), 5);
        assert_eq!(ws_run_end_swar(&bytes, 5), 6);
        assert_eq!(find_terminator_swar(&bytes, 0), 6);
    }
}
