//! # fonduer-nlp
//!
//! NLP preprocessing substrate for Fonduer (paper §3.1: "standard NLP
//! pre-processing tools are used to generate linguistic attributes, such as
//! lemmas, parts of speech tags, named entity recognition tags ... for each
//! Sentence"). Everything is rule-based and deterministic — a from-scratch
//! stand-in for CoreNLP-style tooling, documented as a substitution in
//! DESIGN.md.
//!
//! * [`token`] — span-based tokenizer aware of numbers, units, part codes,
//!   intervals; emits byte offsets into the source text, no `String`s;
//! * [`sentence`] — sentence splitter with abbreviation/decimal protection;
//! * [`simd`] — SWAR/AVX2 byte-class scanners behind runtime dispatch,
//!   bit-identical to the scalar path (`FONDUER_NO_AVX2=1` forces scalar);
//! * [`tag`] — POS tagger, lemmatizer, entity-style tagger;
//! * [`ngram`] — n-gram helpers used by matchers and labeling functions;
//! * [`vocab`] — hashed vocabulary backing trainable word embeddings;
//! * [`preprocess`] — fused split→tokenize→tag pass writing the document
//!   arena directly, plus the allocating `SentenceData` compatibility path.

#![warn(missing_docs)]

pub mod ngram;
pub mod preprocess;
pub mod sentence;
pub mod simd;
pub mod tag;
pub mod token;
pub mod vocab;

pub use ngram::{contains_word, ngrams, up_to_ngrams};
pub use preprocess::{
    preprocess, preprocess_into, preprocess_sentence, preprocess_sentence_into, NlpScratch,
};
pub use sentence::{sentence_texts, split_sentences};
pub use simd::simd_level;
pub use tag::{is_number, lemmatize, lower_into, ner_tag, pos_tag, UNITS};
#[allow(deprecated)]
pub use token::token_texts;
pub use token::{tokenize, tokenize_into, Token};
pub use vocab::{fnv1a, HashedVocab};
