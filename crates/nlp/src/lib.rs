//! # fonduer-nlp
//!
//! NLP preprocessing substrate for Fonduer (paper §3.1: "standard NLP
//! pre-processing tools are used to generate linguistic attributes, such as
//! lemmas, parts of speech tags, named entity recognition tags ... for each
//! Sentence"). Everything is rule-based and deterministic — a from-scratch
//! stand-in for CoreNLP-style tooling, documented as a substitution in
//! DESIGN.md.
//!
//! * [`token`] — tokenizer aware of numbers, units, part codes, intervals;
//! * [`sentence`] — sentence splitter with abbreviation/decimal protection;
//! * [`tag`] — POS tagger, lemmatizer, entity-style tagger;
//! * [`ngram`] — n-gram helpers used by matchers and labeling functions;
//! * [`vocab`] — hashed vocabulary backing trainable word embeddings;
//! * [`preprocess`] — raw text → `SentenceData` for the document builder.

#![warn(missing_docs)]

pub mod ngram;
pub mod preprocess;
pub mod sentence;
pub mod tag;
pub mod token;
pub mod vocab;

pub use ngram::{contains_word, ngrams, up_to_ngrams};
pub use preprocess::{preprocess, preprocess_sentence};
pub use sentence::{sentence_texts, split_sentences};
pub use tag::{is_number, lemmatize, ner_tag, pos_tag, UNITS};
pub use token::{token_texts, tokenize, Token};
pub use vocab::{fnv1a, HashedVocab};
