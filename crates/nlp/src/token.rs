//! Tokenization.
//!
//! A deterministic rule-based tokenizer tuned for richly formatted technical
//! text: it splits punctuation, separates numbers from attached units
//! (`"200mA"` → `"200"`, `"mA"`), keeps signed and decimal numbers together
//! (`"-65"`, `"0.1"`), and preserves interval ellipses (`"..."`) and symbol
//! tokens (`"°C"`, `"≤"`, `"~"`) that carry meaning in datasheets.
//!
//! Tokens are pure byte spans into the source text — no per-token `String`
//! is ever allocated. The scan itself is byte-oriented: ASCII runs (digits,
//! word characters, whitespace) advance through the SWAR/AVX2 scanners in
//! [`crate::simd`], and only non-ASCII lead bytes fall back to `char`
//! decoding. The emitted spans are bit-identical to the original
//! char-by-char rule set; parity tests in this module and the SIMD module
//! pin that equivalence.

use crate::simd;

/// A token: a `[start, end)` byte span into the source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first byte in the source.
    pub start: u32,
    /// Byte offset one past the last byte in the source.
    pub end: u32,
}

impl Token {
    /// The token text, borrowed zero-copy from the source it was produced
    /// from.
    #[inline]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start as usize..self.end as usize]
    }

    /// Length of the token in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span is empty (never true for emitted tokens).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Whether the char before byte `i` (which must start a char) is
/// alphanumeric. Walks backwards over UTF-8 continuation bytes.
fn prev_char_is_alphanumeric(text: &str, i: usize) -> bool {
    let b = text.as_bytes();
    let mut j = i - 1;
    while j > 0 && (b[j] & 0xC0) == 0x80 {
        j -= 1;
    }
    text[j..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric())
}

/// Extend a word-character run starting at `start`: letters, digits,
/// underscore, degree sign, and non-ASCII alphanumerics — but break at the
/// first letter when the prefix so far is all digits (splits units glued to
/// numbers, keeps alphanumeric part codes whole).
fn word_run_end(text: &str, start: usize) -> usize {
    let b = text.as_bytes();
    let n = b.len();
    let mut j = start;
    let mut saw_letter = false;
    while j < n {
        let c = b[j];
        if c < 0x80 {
            if c.is_ascii_digit() {
                if saw_letter {
                    // Mixed run: everything word-like keeps the token going.
                    j = simd::word_run_end(b, j);
                } else {
                    j = simd::digit_run_end(b, j);
                }
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                if !saw_letter && j > start {
                    break;
                }
                saw_letter = true;
                j = simd::word_run_end(b, j);
                continue;
            }
            break;
        }
        let ch = text[j..].chars().next().unwrap();
        if ch == '°' || ch == '_' || ch.is_alphanumeric() {
            if !saw_letter && j > start {
                break;
            }
            saw_letter = true;
            j += ch.len_utf8();
            continue;
        }
        break;
    }
    j
}

/// Tokenize `text` into [`Token`] spans.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::with_capacity(text.len() / 4 + 1);
    tokenize_into(text, &mut out);
    out
}

/// Tokenize `text` into `out`, reusing its allocation. The buffer is
/// cleared first.
pub fn tokenize_into(text: &str, out: &mut Vec<Token>) {
    out.clear();
    let b = text.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if c < 0x80 {
            if simd::is_ascii_ws(c) {
                i = simd::ws_run_end(b, i + 1);
                continue;
            }
            // Signed / decimal number: [-+]?digits(.digits)? — a leading
            // sign counts as part of the number only if a digit follows
            // directly AND the sign is not glued to a preceding
            // alphanumeric (so "-65" after whitespace is signed, but the
            // dashes in "555-0147" are separators).
            let sign_ok = (c == b'-' || c == b'+')
                && i + 1 < n
                && b[i + 1].is_ascii_digit()
                && (i == 0 || !prev_char_is_alphanumeric(text, i));
            if c.is_ascii_digit() || sign_ok {
                let start = i;
                let mut j = simd::digit_run_end(b, i + usize::from(sign_ok));
                // Decimal point must be followed by a digit (so "150."
                // splits).
                if j + 1 < n && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    j = simd::digit_run_end(b, j + 1);
                }
                out.push(Token {
                    start: start as u32,
                    end: j as u32,
                });
                i = j;
                continue;
            }
            // Ellipsis used for intervals: "...".
            if c == b'.' && i + 2 < n && b[i + 1] == b'.' && b[i + 2] == b'.' {
                let start = i;
                let mut j = i;
                while j < n && b[j] == b'.' {
                    j += 1;
                }
                out.push(Token {
                    start: start as u32,
                    end: j as u32,
                });
                i = j;
                continue;
            }
            if simd::is_ascii_word(c) {
                let j = word_run_end(text, i);
                out.push(Token {
                    start: i as u32,
                    end: j as u32,
                });
                i = j;
                continue;
            }
            // Any other single ASCII character is its own token
            // (punctuation, math symbols).
            out.push(Token {
                start: i as u32,
                end: i as u32 + 1,
            });
            i += 1;
            continue;
        }
        // Non-ASCII lead byte: decode one char and classify it.
        let ch = text[i..].chars().next().unwrap();
        let w = ch.len_utf8();
        if ch.is_whitespace() {
            i += w;
            continue;
        }
        if ch == '°' || ch.is_alphanumeric() {
            let j = word_run_end(text, i);
            out.push(Token {
                start: i as u32,
                end: j as u32,
            });
            i = j;
            continue;
        }
        out.push(Token {
            start: i as u32,
            end: (i + w) as u32,
        });
        i += w;
    }
}

/// Tokenize and return owned token texts.
#[deprecated(
    since = "0.1.0",
    note = "allocates one String per token; use `tokenize` and `Token::text` \
            to borrow spans from the source instead"
)]
pub fn token_texts(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .map(|t| t.text(text).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(text: &str) -> Vec<&str> {
        tokenize(text).into_iter().map(|t| t.text(text)).collect()
    }

    #[test]
    fn splits_whitespace_and_punct() {
        assert_eq!(texts("Hello, world."), vec!["Hello", ",", "world", "."]);
    }

    #[test]
    fn keeps_part_numbers_whole() {
        assert_eq!(
            texts("SMBT3904 and MMBT3904"),
            vec!["SMBT3904", "and", "MMBT3904"]
        );
    }

    #[test]
    fn splits_number_unit() {
        assert_eq!(texts("200mA"), vec!["200", "mA"]);
        assert_eq!(
            texts("0.1 mA to 100 mA"),
            vec!["0.1", "mA", "to", "100", "mA"]
        );
    }

    #[test]
    fn glued_dashes_are_separators() {
        assert_eq!(texts("555-0147"), vec!["555", "-", "0147"]);
        assert_eq!(texts("206-555-0147"), vec!["206", "-", "555", "-", "0147"]);
    }

    #[test]
    fn signed_numbers_and_intervals() {
        assert_eq!(texts("-65 ... 150"), vec!["-65", "...", "150"]);
        assert_eq!(texts("-65 ~ 150"), vec!["-65", "~", "150"]);
        assert_eq!(texts("-65 to 150"), vec!["-65", "to", "150"]);
    }

    #[test]
    fn hyphen_between_words_is_its_own_token() {
        assert_eq!(
            texts("collector-emitter voltage"),
            vec!["collector", "-", "emitter", "voltage"]
        );
    }

    #[test]
    fn degree_symbol_and_comparison() {
        assert_eq!(texts("TS ≤ 60°C"), vec!["TS", "≤", "60", "°C"]);
    }

    #[test]
    fn offsets_are_byte_accurate() {
        let text = "VCEO 40 V";
        let toks = tokenize(text);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text(text), "VCEO");
        assert_eq!(toks[1].text(text), "40");
        assert_eq!(toks[2].text(text), "V");
    }

    #[test]
    fn decimal_not_greedy_over_sentence_period() {
        assert_eq!(texts("gain 150. Next"), vec!["gain", "150", ".", "Next"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn unicode_offsets() {
        let text = "α ≤ β";
        let toks = tokenize(text);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text(text), "α");
        assert_eq!(toks[1].text(text), "≤");
        assert_eq!(toks[2].text(text), "β");
    }

    #[test]
    fn long_runs_cross_simd_blocks() {
        // Runs longer than the 8-byte SWAR and 32-byte AVX2 block sizes.
        let long_word = "A".repeat(100);
        let long_num = "7".repeat(100);
        let text = format!("{long_word} {long_num} end");
        assert_eq!(texts(&text), vec![long_word.as_str(), &long_num, "end"]);
        let spaced = format!("x{}y", " ".repeat(75));
        assert_eq!(texts(&spaced), vec!["x", "y"]);
    }

    #[test]
    fn mixed_digit_letter_runs() {
        // Digit prefix then letters splits; letter prefix keeps digits.
        assert_eq!(texts("3904A"), vec!["3904", "A"]);
        assert_eq!(texts("A3904B12"), vec!["A3904B12"]);
        assert_eq!(texts("rs7329174"), vec!["rs7329174"]);
        assert_eq!(texts("1.5W"), vec!["1.5", "W"]);
        assert_eq!(texts("150."), vec!["150", "."]);
        assert_eq!(texts("_private1"), vec!["_private1"]);
    }

    /// The scalar reference implementation the byte tokenizer replaced:
    /// char-indexed, rule-for-rule identical to the original. Kept in tests
    /// as the equivalence oracle.
    fn tokenize_reference(text: &str) -> Vec<Token> {
        fn is_word_char(c: char) -> bool {
            c.is_alphanumeric() || c == '_' || c == '°'
        }
        let mut out = Vec::new();
        let bytes: Vec<(usize, char)> = text.char_indices().collect();
        let n = bytes.len();
        let mut i = 0;
        let push = |out: &mut Vec<Token>, a: usize, b: usize| {
            out.push(Token {
                start: a as u32,
                end: b as u32,
            });
        };
        while i < n {
            let (pos, c) = bytes[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let sign_ok = (c == '-' || c == '+')
                && i + 1 < n
                && bytes[i + 1].1.is_ascii_digit()
                && (i == 0 || !bytes[i - 1].1.is_alphanumeric());
            if c.is_ascii_digit() || sign_ok {
                let start = pos;
                let mut j = i;
                if c == '-' || c == '+' {
                    j += 1;
                }
                while j < n && bytes[j].1.is_ascii_digit() {
                    j += 1;
                }
                if j + 1 < n && bytes[j].1 == '.' && bytes[j + 1].1.is_ascii_digit() {
                    j += 1;
                    while j < n && bytes[j].1.is_ascii_digit() {
                        j += 1;
                    }
                }
                let end = if j < n { bytes[j].0 } else { text.len() };
                push(&mut out, start, end);
                i = j;
                continue;
            }
            if c == '.' && i + 2 < n && bytes[i + 1].1 == '.' && bytes[i + 2].1 == '.' {
                let start = pos;
                let mut j = i;
                while j < n && bytes[j].1 == '.' {
                    j += 1;
                }
                let end = if j < n { bytes[j].0 } else { text.len() };
                push(&mut out, start, end);
                i = j;
                continue;
            }
            if is_word_char(c) {
                let start = pos;
                let mut j = i;
                let mut saw_letter = false;
                while j < n && is_word_char(bytes[j].1) {
                    if bytes[j].1.is_ascii_digit() {
                        j += 1;
                    } else {
                        if !saw_letter && j > i {
                            break;
                        }
                        saw_letter = true;
                        j += 1;
                    }
                }
                let end = if j < n { bytes[j].0 } else { text.len() };
                push(&mut out, start, end);
                i = j;
                continue;
            }
            let end = if i + 1 < n {
                bytes[i + 1].0
            } else {
                text.len()
            };
            push(&mut out, pos, end);
            i += 1;
        }
        out
    }

    const ADVERSARIAL: &[&str] = &[
        "",
        ".",
        "..",
        "...",
        "....",
        ".5",
        "5.",
        "5.5",
        "5..5",
        "-",
        "+",
        "-5",
        "a-5",
        "α-5",
        "5-5",
        "_",
        "__x__",
        "°",
        "°C",
        "60°C60",
        "x°C",
        "a\u{a0}b",
        "tab\tsep",
        "α ≤ β",
        "αβγ123",
        "123αβγ",
        "Ω123mA",
        "naïve café résumé",
        "−65 … 150",
        "a...b",
        "-65...150",
        "SMBT3904...MMBT3904",
        "0.2 V at 10 mA, -65 to 150.",
        "417 K/W (1.5 W at 25).",
        "e.g. Fig. 3 vs. eq. 4",
        "﷽",
        "a\u{301}b",
    ];

    #[test]
    fn byte_tokenizer_matches_char_reference() {
        for &case in ADVERSARIAL {
            assert_eq!(
                tokenize(case),
                tokenize_reference(case),
                "case {case:?} (simd level {})",
                crate::simd::simd_level()
            );
        }
    }

    #[test]
    fn byte_tokenizer_matches_char_reference_on_random_text() {
        // Deterministic pseudo-random mixtures of the interesting char
        // classes, long enough to cross SIMD block boundaries.
        let alphabet: Vec<char> = "abzAZ09._-+ °≤…αΣ\t\u{a0}?!…5".chars().collect();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for len in [1usize, 7, 8, 9, 31, 32, 33, 200] {
            for _ in 0..50 {
                let mut s = String::new();
                for _ in 0..len {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    s.push(alphabet[(state % alphabet.len() as u64) as usize]);
                }
                assert_eq!(tokenize(&s), tokenize_reference(&s), "input {s:?}");
            }
        }
    }

    #[test]
    fn simd_paths_agree_on_tokenization() {
        let inputs: Vec<String> = ADVERSARIAL
            .iter()
            .map(|s| s.to_string())
            .chain(std::iter::once(
                "Storage temperature -65 ... 150 °C, 417 K/W thermal resistance. ".repeat(8),
            ))
            .collect();
        let dispatched: Vec<Vec<Token>> = inputs.iter().map(|s| tokenize(s)).collect();
        crate::simd::force_generic(true);
        let generic: Vec<Vec<Token>> = inputs.iter().map(|s| tokenize(s)).collect();
        crate::simd::force_generic(false);
        assert_eq!(dispatched, generic);
    }
}
