//! Tokenization.
//!
//! A deterministic rule-based tokenizer tuned for richly formatted technical
//! text: it splits punctuation, separates numbers from attached units
//! (`"200mA"` → `"200"`, `"mA"`), keeps signed and decimal numbers together
//! (`"-65"`, `"0.1"`), and preserves interval ellipses (`"..."`) and symbol
//! tokens (`"°C"`, `"≤"`, `"~"`) that carry meaning in datasheets.

/// A token: its text and byte offsets into the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// Byte offset of the first byte in the source.
    pub start: u32,
    /// Byte offset one past the last byte in the source.
    pub end: u32,
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '°'
}

fn is_digitish(c: char) -> bool {
    c.is_ascii_digit()
}

/// Tokenize `text` into [`Token`]s with byte offsets.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let bytes: Vec<(usize, char)> = text.char_indices().collect();
    let n = bytes.len();
    let mut i = 0;
    let push = |out: &mut Vec<Token>, text: &str, a: usize, b: usize| {
        out.push(Token {
            text: text[a..b].to_string(),
            start: a as u32,
            end: b as u32,
        });
    };
    while i < n {
        let (pos, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Signed / decimal number: [-+]?digits(.digits)? — a leading sign
        // counts as part of the number only if a digit follows directly AND
        // the sign is not glued to a preceding alphanumeric (so "-65" after
        // whitespace is signed, but the dashes in "555-0147" are separators).
        let sign_ok = (c == '-' || c == '+')
            && i + 1 < n
            && is_digitish(bytes[i + 1].1)
            && (i == 0 || !bytes[i - 1].1.is_alphanumeric());
        if is_digitish(c) || sign_ok {
            let start = pos;
            let mut j = i;
            if c == '-' || c == '+' {
                j += 1;
            }
            while j < n && is_digitish(bytes[j].1) {
                j += 1;
            }
            // Decimal point must be followed by a digit (so "150." splits).
            if j + 1 < n && bytes[j].1 == '.' && is_digitish(bytes[j + 1].1) {
                j += 1;
                while j < n && is_digitish(bytes[j].1) {
                    j += 1;
                }
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            push(&mut out, text, start, end);
            i = j;
            continue;
        }
        // Ellipsis used for intervals: "...".
        if c == '.' && i + 2 < n && bytes[i + 1].1 == '.' && bytes[i + 2].1 == '.' {
            let start = pos;
            let mut j = i;
            while j < n && bytes[j].1 == '.' {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            push(&mut out, text, start, end);
            i = j;
            continue;
        }
        // Word: letters/digits/underscore/degree-sign run, but break at a
        // letter→digit or digit→letter boundary only when the prefix is all
        // digits (keeps part numbers like "SMBT3904" whole while splitting
        // "200mA").
        if is_word_char(c) {
            let start = pos;
            let mut j = i;
            let mut saw_letter = false;
            while j < n && is_word_char(bytes[j].1) {
                let ch = bytes[j].1;
                if is_digitish(ch) {
                    j += 1;
                } else {
                    // A letter after a pure-digit prefix starts a new token
                    // (unit attached to a number).
                    if !saw_letter && j > i {
                        break;
                    }
                    saw_letter = true;
                    j += 1;
                }
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            push(&mut out, text, start, end);
            i = j;
            continue;
        }
        // Any other single character is its own token (punctuation, math
        // symbols like ≤, ~, ±).
        let end = if i + 1 < n {
            bytes[i + 1].0
        } else {
            text.len()
        };
        push(&mut out, text, pos, end);
        i += 1;
    }
    out
}

/// Tokenize and return only the token texts. Convenience for tests.
pub fn token_texts(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_whitespace_and_punct() {
        assert_eq!(
            token_texts("Hello, world."),
            vec!["Hello", ",", "world", "."]
        );
    }

    #[test]
    fn keeps_part_numbers_whole() {
        assert_eq!(
            token_texts("SMBT3904 and MMBT3904"),
            vec!["SMBT3904", "and", "MMBT3904"]
        );
    }

    #[test]
    fn splits_number_unit() {
        assert_eq!(token_texts("200mA"), vec!["200", "mA"]);
        assert_eq!(
            token_texts("0.1 mA to 100 mA"),
            vec!["0.1", "mA", "to", "100", "mA"]
        );
    }

    #[test]
    fn glued_dashes_are_separators() {
        assert_eq!(token_texts("555-0147"), vec!["555", "-", "0147"]);
        assert_eq!(
            token_texts("206-555-0147"),
            vec!["206", "-", "555", "-", "0147"]
        );
    }

    #[test]
    fn signed_numbers_and_intervals() {
        assert_eq!(token_texts("-65 ... 150"), vec!["-65", "...", "150"]);
        assert_eq!(token_texts("-65 ~ 150"), vec!["-65", "~", "150"]);
        assert_eq!(token_texts("-65 to 150"), vec!["-65", "to", "150"]);
    }

    #[test]
    fn hyphen_between_words_is_its_own_token() {
        assert_eq!(
            token_texts("collector-emitter voltage"),
            vec!["collector", "-", "emitter", "voltage"]
        );
    }

    #[test]
    fn degree_symbol_and_comparison() {
        assert_eq!(token_texts("TS ≤ 60°C"), vec!["TS", "≤", "60", "°C"]);
    }

    #[test]
    fn offsets_are_byte_accurate() {
        let text = "VCEO 40 V";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(&text[t.start as usize..t.end as usize], t.text);
        }
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn decimal_not_greedy_over_sentence_period() {
        assert_eq!(
            token_texts("gain 150. Next"),
            vec!["gain", "150", ".", "Next"]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn unicode_offsets() {
        let text = "α ≤ β";
        let toks = tokenize(text);
        assert_eq!(toks.len(), 3);
        for t in &toks {
            assert_eq!(&text[t.start as usize..t.end as usize], t.text);
        }
    }
}
