//! Sentence splitting.
//!
//! Rule-based splitter: sentence boundaries are `.`, `!`, `?` followed by
//! whitespace and an upper-case letter or digit, with protection for common
//! abbreviations and decimal numbers.

const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "fig", "figs", "eq", "vs", "no", "dr", "mr", "mrs", "ms", "inc", "ltd",
    "co", "approx", "max", "min", "typ", "al",
];

fn ends_with_abbreviation(prefix: &str) -> bool {
    let trimmed = prefix.trim_end_matches('.');
    let last_word = trimmed
        .rsplit(|c: char| c.is_whitespace() || c == '(')
        .next()
        .unwrap_or("");
    ABBREVIATIONS
        .iter()
        .any(|a| last_word.eq_ignore_ascii_case(a))
}

/// Split `text` into sentence substrings with byte ranges `(start, end)`.
///
/// Byte-oriented scan: candidate terminators (`.`, `!`, `?` — all ASCII)
/// are located with the SWAR/AVX2 scanner in [`crate::simd`], and only the
/// look-ahead over following whitespace decodes chars (non-ASCII
/// whitespace and uppercase tests are Unicode-aware, matching the original
/// char-indexed implementation exactly).
pub fn split_sentences(text: &str) -> Vec<(usize, usize)> {
    let b = text.as_bytes();
    let n = b.len();
    let mut spans = Vec::new();
    let mut sent_start = 0usize;
    let mut i = 0usize;
    while i < n {
        i = crate::simd::find_terminator(b, i);
        if i >= n {
            break;
        }
        let c = b[i];
        // Decimal point inside a number is not a boundary.
        if c == b'.' && i > 0 && b[i - 1].is_ascii_digit() && i + 1 < n && b[i + 1].is_ascii_digit()
        {
            i += 1;
            continue;
        }
        // Abbreviation protection.
        if c == b'.' && ends_with_abbreviation(&text[sent_start..i]) {
            i += 1;
            continue;
        }
        // Look ahead: boundary only if followed by whitespace then an
        // upper-case letter/digit (or end of text).
        let mut j = i + 1;
        loop {
            j = crate::simd::ws_run_end(b, j);
            match text[j..].chars().next() {
                Some(ch) if !ch.is_ascii() && ch.is_whitespace() => j += ch.len_utf8(),
                _ => break,
            }
        }
        let next = text[j..].chars().next();
        let is_boundary = match next {
            None => true,
            Some(ch) => j > i + 1 && (ch.is_uppercase() || ch.is_ascii_digit()),
        };
        if is_boundary {
            let end = i + 1;
            if !text[sent_start..end].trim().is_empty() {
                spans.push((sent_start, end));
            }
            sent_start = j;
            i = j;
            continue;
        }
        i += 1;
    }
    if sent_start < text.len() && !text[sent_start..].trim().is_empty() {
        spans.push((sent_start, text.len()));
    }
    spans
}

/// Split and return the sentence texts (trimmed). Convenience for tests.
pub fn sentence_texts(text: &str) -> Vec<&str> {
    split_sentences(text)
        .into_iter()
        .map(|(a, b)| text[a..b].trim())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        assert_eq!(
            sentence_texts("First sentence. Second one. Third!"),
            vec!["First sentence.", "Second one.", "Third!"]
        );
    }

    #[test]
    fn protects_decimals() {
        assert_eq!(
            sentence_texts("Gain is 0.1 mA at best. Done."),
            vec!["Gain is 0.1 mA at best.", "Done."]
        );
    }

    #[test]
    fn protects_abbreviations() {
        assert_eq!(
            sentence_texts("See Fig. 3 for details. Next."),
            vec!["See Fig. 3 for details.", "Next."]
        );
        assert_eq!(
            sentence_texts("Species were measured (e.g. femur length). More."),
            vec!["Species were measured (e.g. femur length).", "More."]
        );
    }

    #[test]
    fn lowercase_continuation_is_not_boundary() {
        assert_eq!(
            sentence_texts("The no. of parts is high. done anyway"),
            // "high. done" — lowercase after period, no split.
            vec!["The no. of parts is high. done anyway"]
        );
    }

    #[test]
    fn single_sentence_without_period() {
        assert_eq!(
            sentence_texts("No terminator here"),
            vec!["No terminator here"]
        );
    }

    #[test]
    fn empty_input() {
        assert!(sentence_texts("").is_empty());
        assert!(sentence_texts("   ").is_empty());
    }

    #[test]
    fn question_and_exclamation() {
        assert_eq!(
            sentence_texts("Really? Yes! Fine."),
            vec!["Really?", "Yes!", "Fine."]
        );
    }
}
