//! Sentence splitting.
//!
//! Rule-based splitter: sentence boundaries are `.`, `!`, `?` followed by
//! whitespace and an upper-case letter or digit, with protection for common
//! abbreviations and decimal numbers.

const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "fig", "figs", "eq", "vs", "no", "dr", "mr", "mrs", "ms", "inc", "ltd",
    "co", "approx", "max", "min", "typ", "al",
];

fn ends_with_abbreviation(prefix: &str) -> bool {
    let trimmed = prefix.trim_end_matches('.');
    let last_word = trimmed
        .rsplit(|c: char| c.is_whitespace() || c == '(')
        .next()
        .unwrap_or("");
    ABBREVIATIONS
        .iter()
        .any(|a| last_word.eq_ignore_ascii_case(a))
}

/// Split `text` into sentence substrings with byte ranges `(start, end)`.
pub fn split_sentences(text: &str) -> Vec<(usize, usize)> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut spans = Vec::new();
    let mut sent_start = 0usize;
    let mut i = 0usize;
    while i < n {
        let (pos, c) = chars[i];
        if c == '!' || c == '?' || c == '.' {
            // Decimal point inside a number is not a boundary.
            if c == '.'
                && i > 0
                && chars[i - 1].1.is_ascii_digit()
                && i + 1 < n
                && chars[i + 1].1.is_ascii_digit()
            {
                i += 1;
                continue;
            }
            // Abbreviation protection.
            if c == '.' && ends_with_abbreviation(&text[sent_start..pos]) {
                i += 1;
                continue;
            }
            // Look ahead: boundary only if followed by whitespace then an
            // upper-case letter/digit (or end of text).
            let mut j = i + 1;
            while j < n && chars[j].1.is_whitespace() {
                j += 1;
            }
            let is_boundary =
                j >= n || (j > i + 1 && (chars[j].1.is_uppercase() || chars[j].1.is_ascii_digit()));
            if is_boundary {
                let end = if i + 1 < n {
                    chars[i + 1].0
                } else {
                    text.len()
                };
                if !text[sent_start..end].trim().is_empty() {
                    spans.push((sent_start, end));
                }
                sent_start = if j < n { chars[j].0 } else { text.len() };
                i = j;
                continue;
            }
        }
        i += 1;
    }
    if sent_start < text.len() && !text[sent_start..].trim().is_empty() {
        spans.push((sent_start, text.len()));
    }
    spans
}

/// Split and return the sentence texts (trimmed). Convenience for tests.
pub fn sentence_texts(text: &str) -> Vec<&str> {
    split_sentences(text)
        .into_iter()
        .map(|(a, b)| text[a..b].trim())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        assert_eq!(
            sentence_texts("First sentence. Second one. Third!"),
            vec!["First sentence.", "Second one.", "Third!"]
        );
    }

    #[test]
    fn protects_decimals() {
        assert_eq!(
            sentence_texts("Gain is 0.1 mA at best. Done."),
            vec!["Gain is 0.1 mA at best.", "Done."]
        );
    }

    #[test]
    fn protects_abbreviations() {
        assert_eq!(
            sentence_texts("See Fig. 3 for details. Next."),
            vec!["See Fig. 3 for details.", "Next."]
        );
        assert_eq!(
            sentence_texts("Species were measured (e.g. femur length). More."),
            vec!["Species were measured (e.g. femur length).", "More."]
        );
    }

    #[test]
    fn lowercase_continuation_is_not_boundary() {
        assert_eq!(
            sentence_texts("The no. of parts is high. done anyway"),
            // "high. done" — lowercase after period, no split.
            vec!["The no. of parts is high. done anyway"]
        );
    }

    #[test]
    fn single_sentence_without_period() {
        assert_eq!(
            sentence_texts("No terminator here"),
            vec!["No terminator here"]
        );
    }

    #[test]
    fn empty_input() {
        assert!(sentence_texts("").is_empty());
        assert!(sentence_texts("   ").is_empty());
    }

    #[test]
    fn question_and_exclamation() {
        assert_eq!(
            sentence_texts("Really? Yes! Fine."),
            vec!["Really?", "Yes!", "Fine."]
        );
    }
}
