//! Rule-based part-of-speech tagging, lemmatization, and entity-style
//! tagging.
//!
//! Fonduer's data model stores "lemmas, parts of speech tags, named entity
//! recognition tags" per word (paper §3.1) produced by "standard NLP
//! pre-processing tools". This module is the from-scratch stand-in: the tags
//! it emits are consistent and information-bearing, which is all the
//! downstream feature library requires.

/// Coarse Penn-style POS tags emitted by [`pos_tag`].
pub const POS_TAGS: &[&str] = &[
    "CD", "DT", "IN", "CC", "TO", "MD", "PRP", "JJ", "RB", "VB", "VBD", "VBG", "VBZ", "NN", "NNS",
    "NNP", "SYM", "PUNCT",
];

const DETERMINERS: &[&str] = &["the", "a", "an", "this", "that", "these", "those", "each"];
const PREPOSITIONS: &[&str] = &[
    "in", "on", "at", "of", "for", "with", "from", "by", "over", "under", "between", "into",
    "through", "per", "within",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor"];
const MODALS: &[&str] = &[
    "can", "may", "must", "shall", "will", "should", "would", "could",
];
const PRONOUNS: &[&str] = &["it", "they", "we", "he", "she", "you", "i"];
const ADJECTIVES: &[&str] = &[
    "high", "low", "maximum", "minimum", "typical", "total", "new", "small", "large", "silicon",
];
const VERBS_BASE: &[&str] = &[
    "be", "is", "are", "was", "were", "have", "has", "show", "shows", "contain", "contains",
    "exceed", "exceeds", "provide", "provides", "measure", "found", "use", "uses",
];

/// Whether the token is numeric (optionally signed decimal).
pub fn is_number(tok: &str) -> bool {
    let t = tok.strip_prefix(['-', '+']).unwrap_or(tok);
    !t.is_empty()
        && t.chars().all(|c| c.is_ascii_digit() || c == '.')
        && t.chars().any(|c| c.is_ascii_digit())
        && t.matches('.').count() <= 1
}

/// Tag one token given its sentence position.
pub fn pos_tag(tok: &str, is_sentence_initial: bool) -> &'static str {
    if is_number(tok) {
        return "CD";
    }
    let first = match tok.chars().next() {
        Some(c) => c,
        None => return "PUNCT",
    };
    if !first.is_alphanumeric() && first != '°' {
        return if tok.chars().all(|c| c.is_ascii_punctuation()) {
            "PUNCT"
        } else {
            "SYM"
        };
    }
    let lower = tok.to_lowercase();
    if tok == "to" {
        return "TO";
    }
    if DETERMINERS.contains(&lower.as_str()) {
        return "DT";
    }
    if PREPOSITIONS.contains(&lower.as_str()) {
        return "IN";
    }
    if CONJUNCTIONS.contains(&lower.as_str()) {
        return "CC";
    }
    if MODALS.contains(&lower.as_str()) {
        return "MD";
    }
    if PRONOUNS.contains(&lower.as_str()) {
        return "PRP";
    }
    if ADJECTIVES.contains(&lower.as_str()) {
        return "JJ";
    }
    if VERBS_BASE.contains(&lower.as_str()) {
        return if lower.ends_with('s') { "VBZ" } else { "VB" };
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return "VBG";
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return "VBD";
    }
    if lower.ends_with("ly") && lower.len() > 3 {
        return "RB";
    }
    // Capitalized mid-sentence (or all-caps code) → proper noun.
    if !is_sentence_initial && first.is_uppercase() {
        return "NNP";
    }
    if tok.chars().any(|c| c.is_ascii_digit()) {
        // Mixed alphanumerics like part codes.
        return "NNP";
    }
    if lower.ends_with('s') && lower.len() > 3 {
        return "NNS";
    }
    "NN"
}

/// Lemmatize one token: lower-case plus light suffix stripping.
pub fn lemmatize(tok: &str) -> String {
    let lower = tok.to_lowercase();
    if is_number(&lower) {
        return lower;
    }
    // Irregulars that matter for technical prose.
    match lower.as_str() {
        "is" | "are" | "was" | "were" | "been" | "being" => return "be".to_string(),
        "has" | "had" => return "have".to_string(),
        "found" => return "find".to_string(),
        _ => {}
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("sses") {
        return format!("{stem}ss");
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.len() >= 3 && (stem.ends_with("sh") || stem.ends_with("ch") || stem.ends_with('x'))
        {
            return stem.to_string();
        }
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if stem.len() >= 3 && !stem.ends_with('s') && !stem.ends_with('u') {
            return stem.to_string();
        }
    }
    lower
}

/// Unit dictionary for the entity tagger: electrical, physical, biological.
pub const UNITS: &[&str] = &[
    "v", "mv", "kv", "a", "ma", "ua", "na", "w", "mw", "kw", "hz", "khz", "mhz", "ghz", "°c", "°f",
    "k", "ohm", "kohm", "mohm", "pf", "nf", "uf", "mm", "cm", "m", "km", "g", "kg", "mg", "s",
    "ms", "us", "ns", "db", "usd", "%",
];

/// Entity-style tag for one token: `NUMBER`, `UNIT`, `CODE` (alphanumeric
/// identifier such as a part number or an rs-id), or `O`.
pub fn ner_tag(tok: &str) -> &'static str {
    if is_number(tok) {
        return "NUMBER";
    }
    let lower = tok.to_lowercase();
    if UNITS.contains(&lower.as_str()) {
        return "UNIT";
    }
    let has_alpha = tok.chars().any(|c| c.is_alphabetic());
    let has_digit = tok.chars().any(|c| c.is_ascii_digit());
    if has_alpha && has_digit {
        return "CODE";
    }
    "O"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_cd() {
        for t in ["200", "-65", "0.1", "+12.5"] {
            assert_eq!(pos_tag(t, false), "CD", "{t}");
            assert_eq!(ner_tag(t), "NUMBER", "{t}");
        }
        assert!(!is_number("1.2.3"));
        assert!(!is_number("-"));
        assert!(!is_number("mA"));
    }

    #[test]
    fn closed_class_words() {
        assert_eq!(pos_tag("the", false), "DT");
        assert_eq!(pos_tag("of", false), "IN");
        assert_eq!(pos_tag("and", false), "CC");
        assert_eq!(pos_tag("to", false), "TO");
        assert_eq!(pos_tag("can", false), "MD");
    }

    #[test]
    fn morphology_rules() {
        assert_eq!(pos_tag("switching", false), "VBG");
        assert_eq!(pos_tag("measured", false), "VBD");
        assert_eq!(pos_tag("quickly", false), "RB");
        assert_eq!(pos_tag("transistors", true), "NNS");
    }

    #[test]
    fn proper_nouns_and_codes() {
        assert_eq!(pos_tag("SMBT3904", false), "NNP");
        assert_eq!(pos_tag("Infineon", false), "NNP");
        // Sentence-initial capitalization alone does not make a proper noun.
        assert_eq!(pos_tag("Voltage", true), "NN");
    }

    #[test]
    fn punctuation_and_symbols() {
        assert_eq!(pos_tag(",", false), "PUNCT");
        assert_eq!(pos_tag("≤", false), "SYM");
    }

    #[test]
    fn lemmatizer_rules() {
        assert_eq!(lemmatize("Transistors"), "transistor");
        assert_eq!(lemmatize("voltages"), "voltage");
        assert_eq!(lemmatize("bodies"), "body");
        assert_eq!(lemmatize("is"), "be");
        assert_eq!(lemmatize("has"), "have");
        assert_eq!(lemmatize("matches"), "match");
        assert_eq!(lemmatize("200"), "200");
        // Short words and trailing double-s are not stripped.
        assert_eq!(lemmatize("gas"), "gas");
        assert_eq!(lemmatize("class"), "class");
    }

    #[test]
    fn unit_tagging() {
        assert_eq!(ner_tag("mA"), "UNIT");
        assert_eq!(ner_tag("V"), "UNIT");
        assert_eq!(ner_tag("°C"), "UNIT");
        assert_eq!(ner_tag("SMBT3904"), "CODE");
        assert_eq!(ner_tag("rs7329174"), "CODE");
        assert_eq!(ner_tag("voltage"), "O");
    }
}
