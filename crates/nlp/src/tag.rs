//! Rule-based part-of-speech tagging, lemmatization, and entity-style
//! tagging.
//!
//! Fonduer's data model stores "lemmas, parts of speech tags, named entity
//! recognition tags" per word (paper §3.1) produced by "standard NLP
//! pre-processing tools". This module is the from-scratch stand-in: the tags
//! it emits are consistent and information-bearing, which is all the
//! downstream feature library requires.

/// Coarse Penn-style POS tags emitted by [`pos_tag`].
pub const POS_TAGS: &[&str] = &[
    "CD", "DT", "IN", "CC", "TO", "MD", "PRP", "JJ", "RB", "VB", "VBD", "VBG", "VBZ", "NN", "NNS",
    "NNP", "SYM", "PUNCT",
];

/// Closed-class word → tag, compiled to one string `match` (rustc switches
/// on length then bytes) instead of per-class linear dictionary scans — the
/// fused ingest pass consults this for every token, and seven sequential
/// `&[&str]::contains` walks were a measurable share of parse+NLP time.
/// Verb forms ending in `s` resolve to `VBZ`, other known verbs to `VB`.
fn closed_class(lower: &str) -> Option<&'static str> {
    Some(match lower {
        "the" | "a" | "an" | "this" | "that" | "these" | "those" | "each" => "DT",
        "in" | "on" | "at" | "of" | "for" | "with" | "from" | "by" | "over" | "under"
        | "between" | "into" | "through" | "per" | "within" => "IN",
        "and" | "or" | "but" | "nor" => "CC",
        "can" | "may" | "must" | "shall" | "will" | "should" | "would" | "could" => "MD",
        "it" | "they" | "we" | "he" | "she" | "you" | "i" => "PRP",
        "high" | "low" | "maximum" | "minimum" | "typical" | "total" | "new" | "small"
        | "large" | "silicon" => "JJ",
        "is" | "was" | "has" | "shows" | "contains" | "exceeds" | "provides" | "uses" => "VBZ",
        "be" | "are" | "were" | "have" | "show" | "contain" | "exceed" | "provide" | "measure"
        | "found" | "use" => "VB",
        _ => return None,
    })
}

/// Whether the token is numeric (optionally signed decimal). Single
/// byte-wise pass; any non-ASCII byte rejects, matching the char-wise
/// definition (`is_ascii_digit` or `.`) exactly.
pub fn is_number(tok: &str) -> bool {
    let b = tok.as_bytes();
    let b = match b.first() {
        Some(b'-') | Some(b'+') => &b[1..],
        _ => b,
    };
    let (mut digits, mut dots) = (0u32, 0u32);
    for &c in b {
        match c {
            b'0'..=b'9' => digits += 1,
            b'.' => dots += 1,
            _ => return false,
        }
    }
    digits > 0 && dots <= 1
}

/// Lower-case `tok` into `out`, reusing its allocation. Byte-wise for
/// ASCII tokens (the overwhelmingly common case); falls back to
/// `str::to_lowercase` otherwise so that multi-char and final-sigma
/// lowercasing match the allocating API exactly.
pub fn lower_into(tok: &str, out: &mut String) {
    out.clear();
    if tok.is_ascii() {
        out.push_str(tok);
        out.make_ascii_lowercase();
    } else {
        out.push_str(&tok.to_lowercase());
    }
}

/// Tag one token given its sentence position.
pub fn pos_tag(tok: &str, is_sentence_initial: bool) -> &'static str {
    if is_number(tok) {
        return "CD";
    }
    let first = match tok.chars().next() {
        Some(c) => c,
        None => return "PUNCT",
    };
    if !first.is_alphanumeric() && first != '°' {
        return if tok.chars().all(|c| c.is_ascii_punctuation()) {
            "PUNCT"
        } else {
            "SYM"
        };
    }
    let mut lower = String::new();
    lower_into(tok, &mut lower);
    pos_tag_cached(tok, &lower, is_sentence_initial)
}

/// [`pos_tag`] with the token's lower-cased form supplied by the caller
/// (the fused ingest pass computes it once per token and shares it across
/// the POS, lemma, and NER taggers).
pub(crate) fn pos_tag_cached(tok: &str, lower: &str, is_sentence_initial: bool) -> &'static str {
    if is_number(tok) {
        return "CD";
    }
    let first = match tok.chars().next() {
        Some(c) => c,
        None => return "PUNCT",
    };
    if !first.is_alphanumeric() && first != '°' {
        return if tok.chars().all(|c| c.is_ascii_punctuation()) {
            "PUNCT"
        } else {
            "SYM"
        };
    }
    if tok == "to" {
        return "TO";
    }
    if let Some(tag) = closed_class(lower) {
        return tag;
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return "VBG";
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return "VBD";
    }
    if lower.ends_with("ly") && lower.len() > 3 {
        return "RB";
    }
    // Capitalized mid-sentence (or all-caps code) → proper noun.
    if !is_sentence_initial && first.is_uppercase() {
        return "NNP";
    }
    if tok.chars().any(|c| c.is_ascii_digit()) {
        // Mixed alphanumerics like part codes.
        return "NNP";
    }
    if lower.ends_with('s') && lower.len() > 3 {
        return "NNS";
    }
    "NN"
}

/// Lemmatize one token: lower-case plus light suffix stripping.
pub fn lemmatize(tok: &str) -> String {
    let lower = tok.to_lowercase();
    let mut out = String::new();
    lemma_from_lower(&lower, &mut out);
    out
}

/// [`lemmatize`] operating on a pre-lowered token, writing into a reusable
/// buffer instead of allocating.
pub(crate) fn lemma_from_lower(lower: &str, out: &mut String) {
    out.clear();
    if is_number(lower) {
        out.push_str(lower);
        return;
    }
    // Irregulars that matter for technical prose.
    match lower {
        "is" | "are" | "was" | "were" | "been" | "being" => {
            out.push_str("be");
            return;
        }
        "has" | "had" => {
            out.push_str("have");
            return;
        }
        "found" => {
            out.push_str("find");
            return;
        }
        _ => {}
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if stem.len() >= 2 {
            out.push_str(stem);
            out.push('y');
            return;
        }
    }
    if let Some(stem) = lower.strip_suffix("sses") {
        out.push_str(stem);
        out.push_str("ss");
        return;
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.len() >= 3 && (stem.ends_with("sh") || stem.ends_with("ch") || stem.ends_with('x'))
        {
            out.push_str(stem);
            return;
        }
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if stem.len() >= 3 && !stem.ends_with('s') && !stem.ends_with('u') {
            out.push_str(stem);
            return;
        }
    }
    out.push_str(lower);
}

/// Unit dictionary for the entity tagger: electrical, physical, biological.
pub const UNITS: &[&str] = &[
    "v", "mv", "kv", "a", "ma", "ua", "na", "w", "mw", "kw", "hz", "khz", "mhz", "ghz", "°c", "°f",
    "k", "ohm", "kohm", "mohm", "pf", "nf", "uf", "mm", "cm", "m", "km", "g", "kg", "mg", "s",
    "ms", "us", "ns", "db", "usd", "%",
];

/// [`UNITS`] membership as a single `match` for the per-token hot path
/// (kept in sync with the public dictionary — see the `unit_match_covers_
/// dictionary` test).
fn is_unit(lower: &str) -> bool {
    matches!(
        lower,
        "v" | "mv"
            | "kv"
            | "a"
            | "ma"
            | "ua"
            | "na"
            | "w"
            | "mw"
            | "kw"
            | "hz"
            | "khz"
            | "mhz"
            | "ghz"
            | "°c"
            | "°f"
            | "k"
            | "ohm"
            | "kohm"
            | "mohm"
            | "pf"
            | "nf"
            | "uf"
            | "mm"
            | "cm"
            | "m"
            | "km"
            | "g"
            | "kg"
            | "mg"
            | "s"
            | "ms"
            | "us"
            | "ns"
            | "db"
            | "usd"
            | "%"
    )
}

/// Entity-style tag for one token: `NUMBER`, `UNIT`, `CODE` (alphanumeric
/// identifier such as a part number or an rs-id), or `O`.
pub fn ner_tag(tok: &str) -> &'static str {
    if is_number(tok) {
        return "NUMBER";
    }
    ner_tag_cached(tok, &tok.to_lowercase())
}

/// [`ner_tag`] with the lower-cased form supplied by the caller.
pub(crate) fn ner_tag_cached(tok: &str, lower: &str) -> &'static str {
    if is_number(tok) {
        return "NUMBER";
    }
    if is_unit(lower) {
        return "UNIT";
    }
    let has_alpha = tok.chars().any(|c| c.is_alphabetic());
    let has_digit = tok.chars().any(|c| c.is_ascii_digit());
    if has_alpha && has_digit {
        return "CODE";
    }
    "O"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_cd() {
        for t in ["200", "-65", "0.1", "+12.5"] {
            assert_eq!(pos_tag(t, false), "CD", "{t}");
            assert_eq!(ner_tag(t), "NUMBER", "{t}");
        }
        assert!(!is_number("1.2.3"));
        assert!(!is_number("-"));
        assert!(!is_number("mA"));
    }

    #[test]
    fn closed_class_words() {
        assert_eq!(pos_tag("the", false), "DT");
        assert_eq!(pos_tag("of", false), "IN");
        assert_eq!(pos_tag("and", false), "CC");
        assert_eq!(pos_tag("to", false), "TO");
        assert_eq!(pos_tag("can", false), "MD");
    }

    #[test]
    fn morphology_rules() {
        assert_eq!(pos_tag("switching", false), "VBG");
        assert_eq!(pos_tag("measured", false), "VBD");
        assert_eq!(pos_tag("quickly", false), "RB");
        assert_eq!(pos_tag("transistors", true), "NNS");
    }

    #[test]
    fn proper_nouns_and_codes() {
        assert_eq!(pos_tag("SMBT3904", false), "NNP");
        assert_eq!(pos_tag("Infineon", false), "NNP");
        // Sentence-initial capitalization alone does not make a proper noun.
        assert_eq!(pos_tag("Voltage", true), "NN");
    }

    #[test]
    fn punctuation_and_symbols() {
        assert_eq!(pos_tag(",", false), "PUNCT");
        assert_eq!(pos_tag("≤", false), "SYM");
    }

    #[test]
    fn lemmatizer_rules() {
        assert_eq!(lemmatize("Transistors"), "transistor");
        assert_eq!(lemmatize("voltages"), "voltage");
        assert_eq!(lemmatize("bodies"), "body");
        assert_eq!(lemmatize("is"), "be");
        assert_eq!(lemmatize("has"), "have");
        assert_eq!(lemmatize("matches"), "match");
        assert_eq!(lemmatize("200"), "200");
        // Short words and trailing double-s are not stripped.
        assert_eq!(lemmatize("gas"), "gas");
        assert_eq!(lemmatize("class"), "class");
    }

    #[test]
    fn unit_match_covers_dictionary() {
        for u in UNITS {
            assert!(is_unit(u), "UNITS entry {u:?} missing from is_unit match");
            assert_eq!(ner_tag_cached(u, u), "UNIT");
        }
    }

    #[test]
    fn closed_class_match_agrees_with_dictionaries() {
        let classes: &[(&[&str], &str)] = &[
            (
                &["the", "a", "an", "this", "that", "these", "those", "each"],
                "DT",
            ),
            (
                &[
                    "in", "on", "at", "of", "for", "with", "from", "by", "over", "under",
                    "between", "into", "through", "per", "within",
                ],
                "IN",
            ),
            (&["and", "or", "but", "nor"], "CC"),
            (
                &[
                    "can", "may", "must", "shall", "will", "should", "would", "could",
                ],
                "MD",
            ),
            (&["it", "they", "we", "he", "she", "you", "i"], "PRP"),
            (
                &[
                    "high", "low", "maximum", "minimum", "typical", "total", "new", "small",
                    "large", "silicon",
                ],
                "JJ",
            ),
        ];
        for (words, tag) in classes {
            for w in *words {
                assert_eq!(closed_class(w), Some(*tag), "{w}");
            }
        }
        // Verbs: `s`-forms are VBZ, base/irregular forms VB.
        for w in [
            "is", "was", "has", "shows", "contains", "exceeds", "provides", "uses",
        ] {
            assert_eq!(closed_class(w), Some("VBZ"), "{w}");
        }
        for w in [
            "be", "are", "were", "have", "show", "contain", "exceed", "provide", "measure",
            "found", "use",
        ] {
            assert_eq!(closed_class(w), Some("VB"), "{w}");
        }
        assert_eq!(closed_class("voltage"), None);
    }

    #[test]
    fn unit_tagging() {
        assert_eq!(ner_tag("mA"), "UNIT");
        assert_eq!(ner_tag("V"), "UNIT");
        assert_eq!(ner_tag("°C"), "UNIT");
        assert_eq!(ner_tag("SMBT3904"), "CODE");
        assert_eq!(ner_tag("rs7329174"), "CODE");
        assert_eq!(ner_tag("voltage"), "O");
    }
}
