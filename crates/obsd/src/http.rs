//! Minimal HTTP/1.1 plumbing for the debug server: request-line parsing and
//! `Connection: close` response writing over a raw [`TcpStream`].
//!
//! Deliberately tiny — GET only, headers ignored, one request per
//! connection — because the server exists to expose telemetry, not to be a
//! web framework. Hostile input is bounded by [`MAX_REQUEST_BYTES`] and the
//! caller's socket read timeout.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Anything
/// larger is answered `431` and dropped.
pub(crate) const MAX_REQUEST_BYTES: usize = 8192;

/// A parsed request line: method, path, and decomposed query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) query: Vec<(String, String)>,
}

impl Request {
    /// First query value under `key`, if present.
    pub(crate) fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each maps to one HTTP status.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ParseError {
    /// Malformed request line (→ 400).
    BadRequest,
    /// Request head exceeded [`MAX_REQUEST_BYTES`] (→ 431).
    TooLarge,
    /// Socket error or timeout while reading (connection is dropped).
    Io,
}

/// Split `path?query` and decompose the query into `(key, value)` pairs.
pub(crate) fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Read and parse one request head from `stream`. Headers are consumed (so
/// the response is not written into unread input) but otherwise ignored.
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut total = 0usize;
    reader.read_line(&mut line).map_err(|_| ParseError::Io)?;
    total += line.len();
    if total > MAX_REQUEST_BYTES {
        return Err(ParseError::TooLarge);
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    // Drain the header block until the blank line, bounding total size.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|_| ParseError::Io)?;
        total += n;
        if total > MAX_REQUEST_BYTES {
            return Err(ParseError::TooLarge);
        }
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(ParseError::BadRequest),
    };
    if !version.starts_with("HTTP/") || !target.starts_with('/') {
        return Err(ParseError::BadRequest);
    }
    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
    })
}

/// Write a complete `Connection: close` response with a `Content-Length`.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing() {
        assert_eq!(parse_target("/metrics"), ("/metrics".to_string(), vec![]));
        let (path, q) = parse_target("/docs/slowest?k=5&x&y=");
        assert_eq!(path, "/docs/slowest");
        assert_eq!(
            q,
            vec![
                ("k".to_string(), "5".to_string()),
                ("x".to_string(), String::new()),
                ("y".to_string(), String::new()),
            ]
        );
        let req = Request {
            method: "GET".into(),
            path,
            query: q,
        };
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
    }
}
