//! Validate a Prometheus text exposition read from stdin; exit non-zero on
//! any violation. CI pipes `curl /metrics` through this.

use std::io::Read;

fn main() {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promcheck: cannot read stdin: {e}");
        std::process::exit(2);
    }
    match fonduer_observe::validate_prometheus(&text) {
        Ok(samples) => println!("promcheck: ok ({samples} samples)"),
        Err(e) => {
            eprintln!("promcheck: invalid exposition: {e}");
            std::process::exit(1);
        }
    }
}
