//! `fonduer-obsd`: a hand-rolled, zero-dependency HTTP/1.1 debug server
//! that exposes the `fonduer-observe` substrate **live** while a pipeline
//! runs — the scrape plane that ROADMAP item 1's extraction service will
//! sit on.
//!
//! Endpoints (all `GET`, one request per connection):
//!
//! | path | payload |
//! |---|---|
//! | `/` | plain-text endpoint index |
//! | `/healthz` | liveness (`ok`) |
//! | `/readyz` | `200` once any telemetry exists, `503` before |
//! | `/metrics` | Prometheus text exposition of a fresh snapshot |
//! | `/report` | last published `RunReport` (human text) |
//! | `/report.json` | last published `RunReport` (JSONL) |
//! | `/trace` | Chrome `trace_event` JSON of the current epoch |
//! | `/docs/slowest?k=N` | per-document stage timings, slowest first |
//! | `/lfs` | labeling-function diagnostics (JSON) |
//! | `/events` | SSE stream of stage/doc progress events |
//!
//! The server is a bounded worker pool over `std::net::TcpListener`: an
//! acceptor thread feeds a capped queue, workers answer with per-request
//! read/write timeouts, and [`ObsdHandle::shutdown`] stops everything via
//! an atomic flag plus a self-connect wake. `/metrics` reads are
//! epoch-coherent against `observe::reset()` (the snapshot seqlock), so a
//! scraper never sees a torn exposition.
//!
//! Activation is either programmatic ([`serve`] / `session.serve_obsd`) or
//! ambient: `FONDUER_OBSD=127.0.0.1:9100` (or `=1` for that default) makes
//! [`activate_from_env`] start a process-global server, so every example
//! becomes scrapeable with zero code changes.

#![warn(missing_docs)]

mod http;

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fonduer_observe as observe;
use parking_lot::RwLock;

use http::{read_request, write_response, ParseError, Request};

/// Default bind address used by `FONDUER_OBSD=1`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:9100";

/// Tunables for [`serve`]. The defaults suit a debug endpoint scraped a
/// few times per second: tiny pool, tight timeouts, bounded queue.
#[derive(Debug, Clone)]
pub struct ObsdOptions {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Queued-connection cap; excess connections are answered `503`.
    pub max_connections: usize,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-request socket write timeout.
    pub write_timeout: Duration,
    /// Maximum lifetime of one `/events` SSE stream.
    pub sse_max: Duration,
    /// SSE idle heartbeat (`: ping`) cadence.
    pub sse_heartbeat: Duration,
}

impl Default for ObsdOptions {
    fn default() -> Self {
        ObsdOptions {
            workers: 2,
            max_connections: 32,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            sse_max: Duration::from_secs(30),
            sse_heartbeat: Duration::from_secs(1),
        }
    }
}

/// State shared between the acceptor, the workers, and the handle.
struct Shared {
    queue: StdMutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    opts: ObsdOptions,
}

/// A running server. Dropping the handle leaves the server running (the
/// process-global instance relies on this); call [`ObsdHandle::shutdown`]
/// for a deterministic stop.
pub struct ObsdHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsdHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, and join every thread. Safe to
    /// call while SSE clients are connected — streams notice the flag at
    /// heartbeat cadence.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor is parked in `accept()`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the debug endpoints until
/// [`ObsdHandle::shutdown`]. Also switches on the progress feed and the
/// span-event log so `/events` and `/trace` have live data.
pub fn serve(addr: &str, opts: ObsdOptions) -> std::io::Result<ObsdHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    observe::set_progress(true);
    observe::set_span_events(true);
    let shared = Arc::new(Shared {
        queue: StdMutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        opts: opts.clone(),
    });
    let mut workers = Vec::with_capacity(opts.workers.max(1));
    for i in 0..opts.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("obsd-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("obsd-accept".to_string())
        .spawn(move || accept_loop(listener, &acceptor_shared))?;
    Ok(ObsdHandle {
        addr: bound,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.opts.max_connections {
            drop(queue);
            // Over the connection cap: refuse politely instead of queueing
            // unboundedly or stalling the acceptor.
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "text/plain",
                "busy\n",
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(250))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        let Some(mut stream) = stream else { return };
        let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
        handle_connection(&mut stream, shared);
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(ParseError::TooLarge) => {
            let _ = write_response(
                stream,
                431,
                "Request Header Fields Too Large",
                "text/plain",
                "request too large\n",
            );
            return;
        }
        Err(ParseError::BadRequest) => {
            let _ = write_response(stream, 400, "Bad Request", "text/plain", "bad request\n");
            return;
        }
        Err(ParseError::Io) => return,
    };
    if req.method != "GET" {
        let _ = write_response(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
        return;
    }
    route(stream, &req, shared);
}

fn route(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    match req.path.as_str() {
        "/" => {
            let _ = write_response(stream, 200, "OK", "text/plain", INDEX);
        }
        "/healthz" => {
            let _ = write_response(stream, 200, "OK", "text/plain", "ok\n");
        }
        "/readyz" => {
            let snap = observe::snapshot();
            let ready =
                !snap.spans.is_empty() || !snap.counters.is_empty() || !snap.histograms.is_empty();
            if ready {
                let _ = write_response(stream, 200, "OK", "text/plain", "ready\n");
            } else {
                let _ = write_response(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "no telemetry yet\n",
                );
            }
        }
        "/metrics" => {
            let body = render_metrics();
            let _ = write_response(stream, 200, "OK", "text/plain; version=0.0.4", &body);
        }
        "/report" => match report_slot().read().clone() {
            Some(text) => {
                let _ = write_response(stream, 200, "OK", "text/plain", &text);
            }
            None => {
                let _ = slot_pending(stream, "no RunReport published yet\n");
            }
        },
        "/report.json" => match report_jsonl_slot().read().clone() {
            Some(jsonl) => {
                let _ = write_response(stream, 200, "OK", "application/x-ndjson", &jsonl);
            }
            None => {
                let _ = slot_pending(stream, "no RunReport published yet\n");
            }
        },
        "/trace" => {
            let body = render_trace();
            let _ = write_response(stream, 200, "OK", "application/json", &body);
        }
        "/docs/slowest" => {
            let k = req
                .query_param("k")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10);
            let body = render_slowest_docs(k);
            let _ = write_response(stream, 200, "OK", "application/json", &body);
        }
        "/lfs" => match lf_slot().read().clone() {
            Some(json) => {
                let _ = write_response(stream, 200, "OK", "application/json", &json);
            }
            None => {
                let _ = slot_pending(stream, "no LF diagnostics published yet\n");
            }
        },
        "/events" => serve_sse(stream, shared),
        _ => {
            let _ = write_response(stream, 404, "Not Found", "text/plain", "not found\n");
        }
    }
}

fn slot_pending(stream: &mut TcpStream, msg: &str) -> std::io::Result<()> {
    write_response(stream, 503, "Service Unavailable", "text/plain", msg)
}

const INDEX: &str = "fonduer-obsd debug server\n\
\n\
GET /healthz            liveness\n\
GET /readyz             readiness (503 until telemetry exists)\n\
GET /metrics            Prometheus text exposition\n\
GET /report             current RunReport (text)\n\
GET /report.json        current RunReport (JSONL)\n\
GET /trace              Chrome trace_event JSON (current epoch)\n\
GET /docs/slowest?k=N   per-document stage timings, slowest first\n\
GET /lfs                labeling-function diagnostics (JSON)\n\
GET /events             SSE progress stream (stage + per-doc events)\n";

/// Stream progress events as Server-Sent Events: replay the retained ring
/// first (so a late subscriber — e.g. CI connecting after the run — still
/// sees data), then follow live with `: ping` heartbeats while idle.
fn serve_sse(stream: &mut TcpStream, shared: &Shared) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut after = 0u64;
    let deadline = Instant::now() + shared.opts.sse_max;
    loop {
        let (events, _evicted) = observe::progress_since(after);
        if let Some(last) = events.last() {
            after = last.seq;
        }
        if events.is_empty() {
            if stream.write_all(b": ping\n\n").is_err() || stream.flush().is_err() {
                return;
            }
        } else {
            for ev in &events {
                let frame = format!(
                    "id: {}\nevent: {}\ndata: {}\n\n",
                    ev.seq,
                    ev.kind,
                    ev.to_json()
                );
                if stream.write_all(frame.as_bytes()).is_err() {
                    return;
                }
            }
            if stream.flush().is_err() {
                return;
            }
        }
        if Instant::now() >= deadline || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Block until new events arrive or a heartbeat is due.
        let _ = observe::progress_wait(after, shared.opts.sse_heartbeat);
    }
}

// ---------------------------------------------------------------------------
// Renderers — public so benches and embedders can measure/reuse them.
// ---------------------------------------------------------------------------

/// Prometheus text exposition of a fresh, epoch-coherent snapshot. This is
/// exactly the `/metrics` response body.
pub fn render_metrics() -> String {
    observe::render_prometheus(&observe::snapshot())
}

/// Chrome `trace_event` JSON for the current epoch (`/trace` body).
pub fn render_trace() -> String {
    observe::render_chrome_trace_with(&observe::snapshot(), &observe::span_events())
}

/// JSON array of the `k` slowest documents with per-stage µs
/// (`/docs/slowest` body).
pub fn render_slowest_docs(k: usize) -> String {
    let docs = observe::doc_timings();
    let mut out = String::from("[");
    for (i, d) in docs.iter().take(k).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"doc\":\"{}\",\"total_us\":{},\"stages\":{{",
            observe::json::escape(&d.doc),
            d.total_ns() / 1_000,
        ));
        for (j, (stage, ns)) in d.stage_ns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                observe::json::escape(stage),
                ns / 1_000
            ));
        }
        out.push_str("}}");
    }
    out.push_str("]\n");
    out
}

// ---------------------------------------------------------------------------
// Publish slots — the session renders owned strings into these so server
// threads never borrow pipeline state.
// ---------------------------------------------------------------------------

fn report_slot() -> &'static RwLock<Option<String>> {
    static SLOT: OnceLock<RwLock<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn report_jsonl_slot() -> &'static RwLock<Option<String>> {
    static SLOT: OnceLock<RwLock<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn lf_slot() -> &'static RwLock<Option<String>> {
    static SLOT: OnceLock<RwLock<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Publish the current `RunReport` renderings for `/report` and
/// `/report.json`. Each call atomically replaces the previous pair.
pub fn publish_report(text: String, jsonl: String) {
    *report_slot().write() = Some(text);
    *report_jsonl_slot().write() = Some(jsonl);
}

/// Publish labeling-function diagnostics JSON for `/lfs`.
pub fn publish_lf_diagnostics(json: String) {
    *lf_slot().write() = Some(json);
}

// ---------------------------------------------------------------------------
// Process-global instance (env activation).
// ---------------------------------------------------------------------------

static GLOBAL: StdMutex<Option<ObsdHandle>> = StdMutex::new(None);

/// Whether a process-global server is running.
pub fn is_active() -> bool {
    global_addr().is_some()
}

/// Bound address of the process-global server, if any.
pub fn global_addr() -> Option<SocketAddr> {
    GLOBAL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(ObsdHandle::addr)
}

/// Start (or reuse) the process-global server on `addr`. Subsequent calls
/// return the already-bound address regardless of the requested one — the
/// global instance lives for the rest of the process.
pub fn ensure_global(addr: &str) -> std::io::Result<SocketAddr> {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(handle) = slot.as_ref() {
        return Ok(handle.addr());
    }
    let handle = serve(addr, ObsdOptions::default())?;
    let bound = handle.addr();
    *slot = Some(handle);
    Ok(bound)
}

/// Honor `FONDUER_OBSD`: unset/`0`/`off` → `None`; `1`/`true`/`on` →
/// [`DEFAULT_ADDR`]; anything else is the bind address. Bind failures are
/// reported to stderr, never fatal — telemetry must not kill the pipeline.
pub fn activate_from_env() -> Option<SocketAddr> {
    let raw = std::env::var("FONDUER_OBSD").ok()?;
    let v = raw.trim();
    let addr = match v.to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "none" => return None,
        "1" | "true" | "on" => DEFAULT_ADDR,
        _ => v,
    };
    match ensure_global(addr) {
        Ok(bound) => Some(bound),
        Err(e) => {
            eprintln!("fonduer-obsd: cannot serve FONDUER_OBSD={v}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// Blocking mini HTTP client: returns (status, headers, body) and
    /// asserts the advertised `Content-Length` matches the body.
    fn http_get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .expect("numeric status");
        if let Some(cl) = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
        {
            assert_eq!(cl.parse::<usize>().unwrap(), body.len(), "{target}");
        }
        (status, head.to_string(), body.to_string())
    }

    /// One end-to-end test (the server + observe registries are
    /// process-global, so the cases must not interleave).
    #[test]
    fn server_end_to_end() {
        let handle = serve("127.0.0.1:0", ObsdOptions::default()).expect("bind");
        let addr = handle.addr();

        let (status, _, body) = http_get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        observe::counter("obsd_t.requests", 3);
        let (status, head, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        observe::validate_prometheus(&body).expect("exposition validates");
        assert!(body.contains("fonduer_obsd_t_requests_total 3"), "{body}");

        let (status, _, _) = http_get(addr, "/readyz");
        assert_eq!(status, 200, "counter exists → ready");

        let (status, _, body) = http_get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/metrics") && body.contains("/events"));

        let (status, _, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        // Non-GET and malformed requests.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"garbage\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        let mut s = TcpStream::connect(addr).unwrap();
        let long = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "x".repeat(http::MAX_REQUEST_BYTES)
        );
        s.write_all(long.as_bytes()).unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");

        // Publish slots: 503 before, 200 after.
        let (status, _, _) = http_get(addr, "/report");
        assert!(status == 503 || status == 200);
        publish_report("report text\n".into(), "{\"kind\":\"stage\"}\n".into());
        publish_lf_diagnostics("{\"lfs\":[]}\n".into());
        let (status, _, body) = http_get(addr, "/report");
        assert_eq!((status, body.as_str()), (200, "report text\n"));
        let (status, _, body) = http_get(addr, "/report.json");
        assert_eq!(status, 200);
        assert!(body.starts_with('{'));
        let (status, _, body) = http_get(addr, "/lfs");
        assert_eq!((status, body.as_str()), (200, "{\"lfs\":[]}\n"));

        // Doc timings → /docs/slowest.
        observe::doc_stage_ns("obsd_t_doc", "candgen", 2_000_000);
        let (status, _, body) = http_get(addr, "/docs/slowest?k=3");
        assert_eq!(status, 200);
        assert!(body.contains("\"doc\":\"obsd_t_doc\""), "{body}");
        assert!(body.contains("\"candgen\":2000"), "{body}");

        // Trace parses as JSON.
        let (status, _, body) = http_get(addr, "/trace");
        assert_eq!(status, 200);
        observe::json::parse(&body).expect("trace is valid JSON");

        // SSE: serve() enabled the progress feed; doc_stage_ns above fed
        // the ring, so a subscriber sees ≥1 data frame without waiting.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /events HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 4096];
        let mut acc = String::new();
        while !acc.contains("\ndata: ") {
            let n = s.read(&mut buf).expect("sse read");
            assert!(n > 0, "stream closed before any event");
            acc.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(acc.contains("text/event-stream"), "{acc}");
        assert!(acc.contains("event: doc"), "{acc}");
        drop(s);

        handle.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // A race with TIME_WAIT can let one connect through; a
                // request on it must go unanswered.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(300)))
                    .unwrap();
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 16];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            },
            "server still answering after shutdown"
        );
    }
}
