//! Error analysis for the iterative development loop (paper §3.3: "Fonduer
//! enables users to easily inspect the resulting candidates and provides a
//! set of labeling function metrics, such as coverage, conflict, and
//! overlap").
//!
//! [`LfReport`] summarizes every labeling function against the label matrix
//! (and against gold when available); [`ErrorBuckets`] splits a model's
//! held-out mistakes into inspectable groups. The `diagnose` example is a
//! CLI over this module.

use fonduer_candidates::CandidateSet;
use fonduer_datamodel::Corpus;
use fonduer_supervision::{LabelMatrix, LabelingFunction, LfDiagnostics};
use fonduer_synth::GoldKb;

/// Gold membership flag for every candidate in `cands` (the adapter between
/// the synth [`GoldKb`] and the gold-slice interface of
/// [`fonduer_supervision::LfDiagnostics`]).
pub fn gold_flags(corpus: &Corpus, cands: &CandidateSet, gold: &GoldKb) -> Vec<bool> {
    cands
        .candidates
        .iter()
        .map(|c| {
            let d = corpus.doc(c.doc);
            gold.contains(&cands.schema.name, &d.name, &c.arg_texts(d))
        })
        .collect()
}

/// Per-LF development metrics.
#[derive(Debug, Clone)]
pub struct LfRow {
    /// LF name.
    pub name: String,
    /// Modality label.
    pub modality: &'static str,
    /// Fraction of candidates the LF labels.
    pub coverage: f64,
    /// Fraction it labels that another LF also labels.
    pub overlap: f64,
    /// Fraction it labels where another LF disagrees.
    pub conflict: f64,
    /// Number of positive votes.
    pub positives: usize,
    /// Number of negative votes.
    pub negatives: usize,
    /// Empirical accuracy against gold, if gold was supplied.
    pub empirical_accuracy: Option<f64>,
}

/// A full labeling-function report.
#[derive(Debug, Clone)]
pub struct LfReport {
    /// One row per LF, in library order.
    pub rows: Vec<LfRow>,
    /// Fraction of candidates with at least one label.
    pub total_coverage: f64,
}

impl LfReport {
    /// Build the report. `gold` enables the empirical-accuracy column; pass
    /// an empty gold KB for unsupervised development metrics only.
    pub fn build(
        lfs: &[LabelingFunction],
        matrix: &LabelMatrix,
        corpus: &Corpus,
        cands: &CandidateSet,
        gold: &GoldKb,
    ) -> Self {
        assert_eq!(matrix.n_rows(), cands.len());
        assert_eq!(matrix.n_cols(), lfs.len());
        let has_gold = !gold.is_empty();
        let flags;
        let gold_opt = if has_gold {
            flags = gold_flags(corpus, cands, gold);
            Some(flags.as_slice())
        } else {
            None
        };
        let names: Vec<String> = lfs.iter().map(|lf| lf.name.clone()).collect();
        let diag = LfDiagnostics::compute(&names, matrix, gold_opt);
        let rows = lfs
            .iter()
            .zip(diag.rows)
            .map(|(lf, d)| LfRow {
                name: d.name,
                modality: lf.modality.label(),
                coverage: d.coverage,
                overlap: d.overlap,
                conflict: d.conflict,
                positives: d.positives,
                negatives: d.negatives,
                empirical_accuracy: d.empirical_accuracy,
            })
            .collect();
        Self {
            rows,
            total_coverage: diag.total_coverage,
        }
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<50} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
            "labeling function", "mod", "cov", "ovl", "cfl", "+", "-", "emp.acc"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<50} {:>5} {:>6.2} {:>6.2} {:>6.2} {:>6} {:>6} {:>7}\n",
                r.name,
                r.modality,
                r.coverage,
                r.overlap,
                r.conflict,
                r.positives,
                r.negatives,
                r.empirical_accuracy
                    .map(|a| format!("{a:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        out.push_str(&format!("total coverage: {:.2}\n", self.total_coverage));
        out
    }
}

/// Held-out mistakes of a classifier, bucketed for inspection.
#[derive(Debug, Clone, Default)]
pub struct ErrorBuckets {
    /// Candidate indices predicted positive but not gold.
    pub false_positives: Vec<usize>,
    /// Candidate indices gold but predicted negative.
    pub false_negatives: Vec<usize>,
}

impl ErrorBuckets {
    /// Bucket errors over an evaluated candidate set.
    pub fn build(
        corpus: &Corpus,
        cands: &CandidateSet,
        marginals: &[f32],
        threshold: f32,
        gold: &GoldKb,
    ) -> Self {
        let mut out = Self::default();
        for (i, (c, &p)) in cands.candidates.iter().zip(marginals).enumerate() {
            let d = corpus.doc(c.doc);
            let is_gold = gold.contains(&cands.schema.name, &d.name, &c.arg_texts(d));
            match (p >= threshold, is_gold) {
                (true, false) => out.false_positives.push(i),
                (false, true) => out.false_negatives.push(i),
                _ => {}
            }
        }
        out
    }

    /// Total number of errors.
    pub fn len(&self) -> usize {
        self.false_positives.len() + self.false_negatives.len()
    }

    /// Whether the classifier made no mistakes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fonduer_candidates::{
        CandidateExtractor, DictionaryMatcher, MentionType, NumberRangeMatcher, RelationSchema,
    };
    use fonduer_datamodel::DocFormat;
    use fonduer_parser::{parse_document, ParseOptions};
    use fonduer_supervision::{LabelingFunction, Modality, ABSTAIN, FALSE, TRUE};

    fn setup() -> (Corpus, CandidateSet, Vec<LabelingFunction>, GoldKb) {
        let html = r#"<h1>BC547</h1>
            <table><tr><th>Parameter</th><th>Value</th></tr>
            <tr><td>Collector current</td><td>100</td></tr>
            <tr><td>Junction temperature</td><td>150</td></tr></table>"#;
        let mut corpus = Corpus::new("t");
        corpus.add(parse_document(
            "d0",
            html,
            DocFormat::Pdf,
            &ParseOptions::default(),
        ));
        let cands = CandidateExtractor::new(
            RelationSchema::new("has_collector_current", &["part", "current"]),
            vec![
                MentionType::new("part", Box::new(DictionaryMatcher::new(["BC547"]))),
                MentionType::new("cur", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
            ],
        )
        .extract(&corpus);
        let lfs = vec![
            LabelingFunction::new("collector_row", Modality::Tabular, |doc, cand| {
                let row = crate::domains::row_words(doc, crate::domains::arg(cand, 1));
                if fonduer_nlp::contains_word(&row, "collector") {
                    TRUE
                } else {
                    FALSE
                }
            }),
            LabelingFunction::new("noop", Modality::Textual, |_, _| ABSTAIN),
        ];
        let mut gold = GoldKb::new();
        gold.add("has_collector_current", "d0", &["BC547", "100"]);
        (corpus, cands, lfs, gold)
    }

    #[test]
    fn report_metrics_and_accuracy() {
        let (corpus, cands, lfs, gold) = setup();
        let refs: Vec<&LabelingFunction> = lfs.iter().collect();
        let lm = LabelMatrix::apply(&refs, &corpus, &cands);
        let report = LfReport::build(&lfs, &lm, &corpus, &cands, &gold);
        assert_eq!(report.rows.len(), 2);
        let row = &report.rows[0];
        assert_eq!(row.coverage, 1.0);
        assert_eq!((row.positives, row.negatives), (1, 1));
        assert_eq!(row.empirical_accuracy, Some(1.0));
        assert_eq!(report.rows[1].coverage, 0.0);
        assert_eq!(report.rows[1].empirical_accuracy, None);
        let text = report.to_text();
        assert!(text.contains("collector_row"));
        assert!(text.contains("total coverage: 1.00"));
    }

    #[test]
    fn report_without_gold_has_no_accuracy() {
        let (corpus, cands, lfs, _) = setup();
        let refs: Vec<&LabelingFunction> = lfs.iter().collect();
        let lm = LabelMatrix::apply(&refs, &corpus, &cands);
        let report = LfReport::build(&lfs, &lm, &corpus, &cands, &GoldKb::new());
        assert!(report.rows.iter().all(|r| r.empirical_accuracy.is_none()));
    }

    #[test]
    fn error_buckets() {
        let (corpus, cands, _, gold) = setup();
        // Candidate order: (BC547, 100) gold, (BC547, 150) not.
        let buckets = ErrorBuckets::build(&corpus, &cands, &[0.2, 0.9], 0.5, &gold);
        assert_eq!(buckets.false_negatives, vec![0]);
        assert_eq!(buckets.false_positives, vec![1]);
        assert_eq!(buckets.len(), 2);
        let perfect = ErrorBuckets::build(&corpus, &cands, &[0.9, 0.1], 0.5, &gold);
        assert!(perfect.is_empty());
    }
}
