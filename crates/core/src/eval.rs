//! Evaluation: precision/recall/F1 against gold tuples, oracle upper
//! bounds (Table 2), and existing-KB comparison metrics (Table 3).

use fonduer_synth::{ExistingKb, GoldKb};
use std::collections::BTreeSet;

/// A `(doc, args)` tuple in normalized form.
pub type Tuple = (String, Vec<String>);

/// Precision / recall / F1 with raw counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl PrF1 {
    /// Compute from counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            tp,
            fp,
            fn_,
        }
    }

    /// The zero score.
    pub fn zero() -> Self {
        Self::from_counts(0, 0, 0)
    }
}

/// Score a predicted tuple set against a gold tuple set.
pub fn eval_tuples(pred: &BTreeSet<Tuple>, gold: &BTreeSet<Tuple>) -> PrF1 {
    let tp = pred.intersection(gold).count();
    let fp = pred.len() - tp;
    let fn_ = gold.len() - tp;
    PrF1::from_counts(tp, fp, fn_)
}

/// Gold tuples of one relation restricted to a document subset.
pub fn gold_tuples_for_docs(
    gold: &GoldKb,
    relation: &str,
    docs: &BTreeSet<String>,
) -> BTreeSet<Tuple> {
    gold.tuples(relation)
        .iter()
        .filter(|(d, _)| docs.contains(d))
        .cloned()
        .collect()
}

/// Oracle upper bound (Table 2's comparison method): given the tuples
/// *reachable* by a candidate-generation technique, assume a perfect filter
/// (precision = 1.0) and report the resulting metrics.
pub fn oracle_upper_bound(reachable: &BTreeSet<Tuple>, gold: &BTreeSet<Tuple>) -> PrF1 {
    let tp = reachable.intersection(gold).count();
    let fn_ = gold.len() - tp;
    // Precision fixed at 1.0 by assumption (unless nothing is reachable).
    if tp == 0 {
        return PrF1 {
            precision: if reachable.is_empty() { 0.0 } else { 1.0 },
            recall: 0.0,
            f1: 0.0,
            tp: 0,
            fp: 0,
            fn_,
        };
    }
    PrF1::from_counts(tp, 0, fn_)
}

/// Table 3 row: comparison of an extracted KB against an existing curated
/// KB, with gold as the accuracy referee.
#[derive(Debug, Clone)]
pub struct KbComparison {
    /// Existing-KB name.
    pub kb_name: String,
    /// `# Entries in KB`.
    pub kb_entries: usize,
    /// `# Entries in Fonduer` (correct or not).
    pub fonduer_entries: usize,
    /// Fraction of KB entries that Fonduer also extracted.
    pub coverage: f64,
    /// Fraction of Fonduer's entries that are correct per gold.
    pub accuracy: f64,
    /// Correct Fonduer entries absent from the existing KB.
    pub new_correct: usize,
    /// Correct Fonduer entries ÷ KB size.
    pub increase: f64,
}

/// Compare entity-level extracted entries against an existing KB
/// (Table 3). `extracted` are deduplicated argument tuples; `gold_entities`
/// is the full set of true entries.
pub fn compare_with_existing_kb(
    extracted: &BTreeSet<Vec<String>>,
    gold_entities: &BTreeSet<Vec<String>>,
    kb: &ExistingKb,
) -> KbComparison {
    let covered = kb.entries.iter().filter(|e| extracted.contains(*e)).count();
    let correct: BTreeSet<&Vec<String>> = extracted
        .iter()
        .filter(|e| gold_entities.contains(*e))
        .collect();
    let new_correct = correct.iter().filter(|e| !kb.entries.contains(**e)).count();
    KbComparison {
        kb_name: kb.name.clone(),
        kb_entries: kb.len(),
        fonduer_entries: extracted.len(),
        coverage: if kb.is_empty() {
            0.0
        } else {
            covered as f64 / kb.len() as f64
        },
        accuracy: if extracted.is_empty() {
            0.0
        } else {
            correct.len() as f64 / extracted.len() as f64
        },
        new_correct,
        increase: if kb.is_empty() {
            0.0
        } else {
            correct.len() as f64 / kb.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(doc: &str, args: &[&str]) -> Tuple {
        (doc.into(), args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn prf1_math() {
        let m = PrF1::from_counts(8, 2, 2);
        assert!((m.precision - 0.8).abs() < 1e-9);
        assert!((m.recall - 0.8).abs() < 1e-9);
        assert!((m.f1 - 0.8).abs() < 1e-9);
        let z = PrF1::zero();
        assert_eq!(z.f1, 0.0);
    }

    #[test]
    fn tuple_eval() {
        let pred: BTreeSet<Tuple> = [t("d1", &["a", "1"]), t("d1", &["b", "2"])].into();
        let gold: BTreeSet<Tuple> = [t("d1", &["a", "1"]), t("d2", &["c", "3"])].into();
        let m = eval_tuples(&pred, &gold);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 1));
        assert!((m.precision - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oracle_assumes_perfect_precision() {
        let reach: BTreeSet<Tuple> = [t("d", &["a"]), t("d", &["b"])].into();
        let gold: BTreeSet<Tuple> = [t("d", &["a"]), t("d", &["c"]), t("d", &["e"])].into();
        let m = oracle_upper_bound(&reach, &gold);
        assert_eq!(m.precision, 1.0);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.fp, 0);
        // Nothing reachable → all-zero row (the paper's 0.00# cells).
        let empty = oracle_upper_bound(&BTreeSet::new(), &gold);
        assert_eq!(empty.precision, 0.0);
        assert_eq!(empty.f1, 0.0);
    }

    #[test]
    fn kb_comparison_metrics() {
        let extracted: BTreeSet<Vec<String>> = [
            vec!["a".into(), "1".into()],
            vec!["b".into(), "2".into()],
            vec!["x".into(), "9".into()], // wrong entry
        ]
        .into();
        let gold: BTreeSet<Vec<String>> = [
            vec!["a".into(), "1".into()],
            vec!["b".into(), "2".into()],
            vec!["c".into(), "3".into()],
        ]
        .into();
        let kb = ExistingKb {
            name: "KB".into(),
            relation: "r".into(),
            entries: [vec!["a".into(), "1".into()], vec!["c".into(), "3".into()]].into(),
        };
        let cmp = compare_with_existing_kb(&extracted, &gold, &kb);
        assert_eq!(cmp.kb_entries, 2);
        assert_eq!(cmp.fonduer_entries, 3);
        assert!((cmp.coverage - 0.5).abs() < 1e-9); // found a/1, missed c/3
        assert!((cmp.accuracy - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cmp.new_correct, 1); // b/2
        assert!((cmp.increase - 1.0).abs() < 1e-9); // 2 correct / 2 KB
    }

    #[test]
    fn gold_filter_by_docs() {
        let mut g = GoldKb::new();
        g.add("r", "d1", &["a"]);
        g.add("r", "d2", &["b"]);
        let docs: BTreeSet<String> = ["d1".to_string()].into();
        let tuples = gold_tuples_for_docs(&g, "r", &docs);
        assert_eq!(tuples.len(), 1);
        assert!(tuples.contains(&t("d1", &["a"])));
    }
}
