//! GENOMICS task definitions: four relations pairing table-borne SNPs and
//! genes with text-borne phenotypes, populations, and platforms in native
//! XML papers (paper §5.1). Every candidate is cross-context.

use super::*;
use crate::pipeline::Task;
use fonduer_candidates::Candidate;
use fonduer_candidates::{
    CandidateExtractor, ContextScope, DictionaryMatcher, FnMatcher, MentionType, RelationSchema,
};
use fonduer_datamodel::Document;
use fonduer_supervision::{LabelingFunction, Modality, ABSTAIN, FALSE, TRUE};
use fonduer_synth::SynthDataset;

/// The four GENOMICS relations.
pub const RELATIONS: [&str; 4] = [
    "snp_phenotype",
    "gene_phenotype",
    "snp_population",
    "snp_platform",
];

/// Matcher for SNP reference ids (`rs` followed by digits).
fn rsid_matcher() -> Box<FnMatcher<impl Fn(&Document, fonduer_datamodel::Span) -> bool>> {
    Box::new(FnMatcher::new(1, |doc: &Document, sp| {
        let s = doc.sentence(sp.sentence);
        let w = s.word(doc, sp.start as usize);
        w.len() > 3 && w.starts_with("rs") && w[2..].chars().all(|c| c.is_ascii_digit())
    }))
}

/// Candidate extractor for one GENOMICS relation.
pub fn extractor(ds: &SynthDataset, rel: &str, scope: ContextScope) -> CandidateExtractor {
    let dict = |name: &str, dict_name: &str| {
        MentionType::new(
            name,
            Box::new(DictionaryMatcher::new(ds.dictionary(dict_name))),
        )
    };
    match rel {
        "snp_phenotype" => CandidateExtractor::new(
            RelationSchema::new(rel, &["snp", "phenotype"]),
            vec![
                MentionType::new("snp", rsid_matcher()),
                dict("phenotype", "phenotypes"),
            ],
        )
        .with_scope(scope),
        "gene_phenotype" => CandidateExtractor::new(
            RelationSchema::new(rel, &["gene", "phenotype"]),
            vec![dict("gene", "genes"), dict("phenotype", "phenotypes")],
        )
        .with_scope(scope),
        "snp_population" => CandidateExtractor::new(
            RelationSchema::new(rel, &["snp", "population"]),
            vec![
                MentionType::new("snp", rsid_matcher()),
                dict("population", "populations"),
            ],
        )
        .with_scope(scope),
        "snp_platform" => CandidateExtractor::new(
            RelationSchema::new(rel, &["snp", "platform"]),
            vec![
                MentionType::new("snp", rsid_matcher()),
                dict("platform", "platforms"),
            ],
        )
        .with_scope(scope),
        other => panic!("unknown GENOMICS relation {other}"),
    }
}

/// Significance LFs shared by the table-borne argument (SNP or gene).
fn table_side_lfs(rel: &str, out: &mut Vec<LabelingFunction>) {
    out.push(LabelingFunction::new(
        format!("{rel}:suggestive_table"),
        Modality::Tabular,
        |doc: &Document, cand: &Candidate| {
            let cap = caption_words(doc, arg(cand, 0));
            if cap.is_empty() {
                ABSTAIN
            } else if any_in(&cap, &["suggestive", "not"]) {
                FALSE
            } else if any_in(&cap, &["significance", "significant"]) {
                TRUE
            } else {
                ABSTAIN
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:row_pvalue_significant"),
        Modality::Tabular,
        |doc: &Document, cand: &Candidate| {
            let nums = row_numbers(doc, arg(cand, 0));
            let p = nums
                .iter()
                .cloned()
                .filter(|v| *v < 1.0)
                .fold(f64::NAN, f64::min);
            if p.is_nan() {
                ABSTAIN
            } else if p < 5e-7 {
                TRUE
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:arg_not_in_table"),
        Modality::Structural,
        |doc: &Document, cand: &Candidate| {
            if in_table(doc, arg(cand, 0)) {
                ABSTAIN
            } else {
                FALSE
            }
        },
    ));
}

/// Labeling functions for one GENOMICS relation.
pub fn lfs(rel: &'static str) -> Vec<LabelingFunction> {
    let mut out: Vec<LabelingFunction> = Vec::new();
    table_side_lfs(rel, &mut out);
    match rel {
        "snp_phenotype" | "gene_phenotype" => {
            // Conjunctive over both sides: the studied phenotype (title)
            // paired with a SNP/gene whose row reached significance. A
            // phenotype-side test alone fires on every candidate and would
            // be pure prior, not evidence.
            out.push(LabelingFunction::new(
                format!("{rel}:title_phenotype_significant_row"),
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    if tag_of(doc, arg(cand, 1)) != "title" {
                        return ABSTAIN;
                    }
                    let p = row_numbers(doc, arg(cand, 0))
                        .into_iter()
                        .filter(|v| *v < 1.0)
                        .fold(f64::NAN, f64::min);
                    if p.is_nan() {
                        ABSTAIN
                    } else if p < 5e-7 {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                format!("{rel}:study_phenotype_significant_caption"),
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 1));
                    if !any_in(&w, &["association", "study"]) {
                        return ABSTAIN;
                    }
                    let cap = caption_words(doc, arg(cand, 0));
                    if cap.is_empty() {
                        ABSTAIN
                    } else if any_in(&cap, &["suggestive", "not"]) {
                        FALSE
                    } else if any_in(&cap, &["significance", "significant"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "snp_population" => {
            out.push(LabelingFunction::new(
                "snp_population:individuals_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 1));
                    if any_in(&w, &["individual", "individuals"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "snp_platform" => {
            out.push(LabelingFunction::new(
                "snp_platform:genotyped_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 1));
                    if any_in(&w, &["genotype", "genotyped", "array"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "snp_platform:abstract_platform",
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    // Platform names appear in methods <p> blocks, never in
                    // tables or titles.
                    let tag = tag_of(doc, arg(cand, 1));
                    if tag == "title" || in_table(doc, arg(cand, 1)) {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        other => panic!("unknown GENOMICS relation {other}"),
    }
    out
}

/// Ternary extension task: `snp_gene_phenotype(snp, gene, phenotype)` —
/// a three-argument relation joining two table mentions (which must share a
/// row) with a text mention. Exercises the n-ary candidate machinery beyond
/// the paper's binary schemas.
pub fn ternary_task(ds: &SynthDataset) -> Task {
    let extractor = CandidateExtractor::new(
        RelationSchema::new("snp_gene_phenotype", &["snp", "gene", "phenotype"]),
        vec![
            MentionType::new("snp", rsid_matcher()),
            MentionType::new(
                "gene",
                Box::new(DictionaryMatcher::new(ds.dictionary("genes"))),
            ),
            MentionType::new(
                "phenotype",
                Box::new(DictionaryMatcher::new(ds.dictionary("phenotypes"))),
            ),
        ],
    )
    // Throttler: the SNP and gene must share a table row, taming the
    // three-way cross-product (paper §4.1's combinatorial-explosion knob).
    .with_throttler(Box::new(fonduer_candidates::NamedThrottler::new(
        "snp_gene_same_row",
        Box::new(fonduer_candidates::FnThrottler(
            |doc: &Document, cand: &Candidate| {
                let (a, b) = (cell_of(doc, arg(cand, 0)), cell_of(doc, arg(cand, 1)));
                match (a, b) {
                    (Some(ca), Some(cb)) => {
                        let (ca, cb) = (doc.cell(ca), doc.cell(cb));
                        ca.table == cb.table && ca.row_start == cb.row_start
                    }
                    _ => false,
                }
            },
        )),
    )));
    let mut lfs: Vec<LabelingFunction> = Vec::new();
    table_side_lfs("snp_gene_phenotype", &mut lfs);
    lfs.push(LabelingFunction::new(
        "snp_gene_phenotype:phenotype_in_title_significant",
        Modality::Structural,
        |doc: &Document, cand: &Candidate| {
            if tag_of(doc, arg(cand, 2)) != "title" {
                return ABSTAIN;
            }
            let p = row_numbers(doc, arg(cand, 0))
                .into_iter()
                .filter(|v| *v < 1.0)
                .fold(f64::NAN, f64::min);
            if p.is_nan() {
                ABSTAIN
            } else if p < 5e-7 {
                TRUE
            } else {
                FALSE
            }
        },
    ));
    Task { extractor, lfs }
}

/// The complete GENOMICS tasks at document scope.
pub fn tasks(ds: &SynthDataset) -> Vec<Task> {
    RELATIONS
        .iter()
        .map(|rel| Task {
            extractor: extractor(ds, rel, ContextScope::Document),
            lfs: lfs(rel),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_task, PipelineConfig};
    use fonduer_synth::{generate_genomics, GenomicsConfig};

    fn ds() -> SynthDataset {
        generate_genomics(&GenomicsConfig {
            n_docs: 40,
            ..Default::default()
        })
    }

    #[test]
    fn text_and_table_oracles_find_nothing() {
        let ds = ds();
        for rel in RELATIONS {
            for scope in [ContextScope::Sentence, ContextScope::TableStrict] {
                let ex = extractor(&ds, rel, scope);
                let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
                let gold = ds.gold.tuples(rel);
                let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
                assert_eq!(covered, 0, "{rel} at {}", scope.label());
            }
        }
    }

    #[test]
    fn document_scope_reaches_gold() {
        let ds = ds();
        for rel in RELATIONS {
            let ex = extractor(&ds, rel, ContextScope::Document);
            let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
            let gold = ds.gold.tuples(rel);
            let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
            assert_eq!(covered, gold.len(), "{rel}");
        }
    }

    #[test]
    fn end_to_end_snp_phenotype_quality() {
        let ds = ds();
        let task = Task {
            extractor: extractor(&ds, "snp_phenotype", ContextScope::Document),
            lfs: lfs("snp_phenotype"),
        };
        let out = run_task(&ds.corpus, &ds.gold, &task, &PipelineConfig::default());
        assert!(
            out.metrics.f1 > 0.6,
            "F1 {} (p={} r={})",
            out.metrics.f1,
            out.metrics.precision,
            out.metrics.recall
        );
    }
}

#[cfg(test)]
mod ternary_tests {
    use super::*;
    use crate::pipeline::{run_task, PipelineConfig};
    use fonduer_synth::{generate_genomics, GenomicsConfig};

    #[test]
    fn ternary_relation_end_to_end() {
        let ds = generate_genomics(&GenomicsConfig {
            n_docs: 30,
            ..Default::default()
        });
        let task = ternary_task(&ds);
        assert_eq!(task.extractor.schema.arity(), 3);
        let out = run_task(&ds.corpus, &ds.gold, &task, &PipelineConfig::default());
        assert!(!out.candidates.is_empty());
        assert!(
            out.metrics.f1 > 0.6,
            "ternary F1 {} (p={} r={})",
            out.metrics.f1,
            out.metrics.precision,
            out.metrics.recall
        );
        // Every KB entry has three arguments.
        for ((_, args), _) in &out.kb.entries {
            assert_eq!(args.len(), 3);
        }
    }
}
