//! ADVERTISEMENTS task definitions: four attribute relations anchored to a
//! contact phone number, over heterogeneous ad layouts (paper §5.1).

use super::*;
use crate::pipeline::Task;
use fonduer_candidates::{
    CandidateExtractor, ContextScope, DictionaryMatcher, FnMatcher, MentionType,
    NumberRangeMatcher, RelationSchema,
};
use fonduer_supervision::{LabelingFunction, Modality, ABSTAIN, FALSE, TRUE};
use fonduer_synth::SynthDataset;

/// The four ADS relations.
pub const RELATIONS: [&str; 4] = ["ad_price", "ad_location", "ad_age", "ad_name"];

/// Phone matcher: the token pattern `NNN - NNN - NNNN` (five tokens).
fn phone_matcher() -> Box<FnMatcher<impl Fn(&Document, fonduer_datamodel::Span) -> bool>> {
    Box::new(FnMatcher::new(5, |doc: &Document, sp| {
        if sp.len() != 5 {
            return false;
        }
        let s = doc.sentence(sp.sentence);
        let w: Vec<&str> = s
            .words(doc)
            .skip(sp.start as usize)
            .take(sp.len())
            .collect();
        let is_num = |t: &str, len: usize| t.len() == len && t.chars().all(|c| c.is_ascii_digit());
        is_num(w[0], 3) && w[1] == "-" && is_num(w[2], 3) && w[3] == "-" && is_num(w[4], 4)
    }))
}

fn second_type(ds: &SynthDataset, rel: &str) -> MentionType {
    match rel {
        "ad_price" => MentionType::new("price", Box::new(NumberRangeMatcher::new(50.0, 999.0))),
        "ad_age" => MentionType::new("age", Box::new(NumberRangeMatcher::new(18.0, 49.0))),
        "ad_location" => MentionType::new(
            "location",
            Box::new(DictionaryMatcher::new(ds.dictionary("cities"))),
        ),
        "ad_name" => MentionType::new(
            "name",
            Box::new(DictionaryMatcher::new(ds.dictionary("first_names"))),
        ),
        other => panic!("unknown ADS relation {other}"),
    }
}

/// Candidate extractor for one ADS relation.
pub fn extractor(ds: &SynthDataset, rel: &str, scope: ContextScope) -> CandidateExtractor {
    let arg_name = rel.strip_prefix("ad_").unwrap_or(rel);
    CandidateExtractor::new(
        RelationSchema::new(rel, &["phone", arg_name]),
        vec![
            MentionType::new("phone", phone_matcher()),
            second_type(ds, rel),
        ],
    )
    .with_scope(scope)
}

/// Labeling functions for one ADS relation.
pub fn lfs(rel: &str) -> Vec<LabelingFunction> {
    let mut out: Vec<LabelingFunction> = Vec::new();
    match rel {
        "ad_price" => {
            out.push(LabelingFunction::new(
                "ad_price:rate_words_in_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(
                        &w,
                        &["roses", "$", "donation", "rate", "special", "hr", "hour"],
                    ) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_price:rate_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["rate", "price", "donation", "hourly"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_price:stats_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(&w, &["measurements", "height", "ft"]) {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_price:claims_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(&w, &["%", "photos", "minutes", "viewed"]) {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_price:meta_block",
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    let st = &doc.sentence(arg(cand, 1).sentence).structural;
                    if st.attr("class") == Some("meta") || st.attr("class") == Some("stats") {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "ad_age" => {
            out.push(LabelingFunction::new(
                "ad_age:age_words",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(&w, &["years", "yo", "old", "age"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_age:age_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["age"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_age:slash_follows",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    // "24/7" availability is not an age.
                    let v = arg(cand, 1);
                    let s = doc.sentence(v.sentence);
                    if (v.end as usize) < s.len() && s.word(doc, v.end as usize) == "/" {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_age:stats_sentence",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(&w, &["measurements", "ft", "post", "updated"]) {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "ad_location" => {
            out.push(LabelingFunction::new(
                "ad_location:movement_words",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let v = arg(cand, 1);
                    let s = doc.sentence(v.sentence);
                    let prev = v.start.checked_sub(1).map(|i| s.lemma(doc, i as usize));
                    match prev {
                        Some("in") | Some("visiting") | Some("to") => TRUE,
                        _ => ABSTAIN,
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_location:location_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["location", "city"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_location:body_text",
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    // City names in running text ("Now in Phoenix") are real.
                    let tag = tag_of(doc, arg(cand, 1));
                    if tag == "li" || tag == "p" {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "ad_name" => {
            out.push(LabelingFunction::new(
                "ad_name:title_name",
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    if tag_of(doc, arg(cand, 1)) == "h1" {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_name:introduction",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_words(doc, arg(cand, 1));
                    if any_in(&w, &["am", "ask", "here"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "ad_name:name_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["name"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
        }
        other => panic!("unknown ADS relation {other}"),
    }
    // Shared visual sanity LF: the phone and the attribute of a one-page ad
    // render on the same page.
    out.push(LabelingFunction::new(
        format!("{rel}:same_page_as_phone"),
        Modality::Visual,
        |doc: &Document, cand: &Candidate| {
            let p = arg(cand, 0);
            let v = arg(cand, 1);
            match (p.page(doc), v.page(doc)) {
                (Some(a), Some(b)) if a != b => FALSE,
                _ => ABSTAIN,
            }
        },
    ));
    out
}

/// The complete ADS tasks at document scope.
pub fn tasks(ds: &SynthDataset) -> Vec<Task> {
    RELATIONS
        .iter()
        .map(|rel| Task {
            extractor: extractor(ds, rel, ContextScope::Document),
            lfs: lfs(rel),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_task, PipelineConfig};
    use fonduer_synth::{generate_ads, AdsConfig};

    fn ds() -> SynthDataset {
        generate_ads(&AdsConfig {
            n_docs: 60,
            ..Default::default()
        })
    }

    #[test]
    fn phone_matcher_finds_all_phones() {
        let ds = ds();
        let ex = extractor(&ds, "ad_price", ContextScope::Document);
        let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
        let gold = ds.gold.tuples("ad_price");
        let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
        assert_eq!(covered, gold.len());
    }

    #[test]
    fn all_four_relations_extract_candidates() {
        let ds = ds();
        for rel in RELATIONS {
            let set = extractor(&ds, rel, ContextScope::Document).extract(&ds.corpus);
            assert!(!set.is_empty(), "{rel}");
        }
    }

    #[test]
    fn end_to_end_price_quality() {
        let ds = ds();
        let task = Task {
            extractor: extractor(&ds, "ad_price", ContextScope::Document),
            lfs: lfs("ad_price"),
        };
        let out = run_task(&ds.corpus, &ds.gold, &task, &PipelineConfig::default());
        assert!(
            out.metrics.f1 > 0.6,
            "F1 {} (p={} r={})",
            out.metrics.f1,
            out.metrics.precision,
            out.metrics.recall
        );
    }

    #[test]
    fn sentence_scope_recall_matches_mixture() {
        // Roughly the inline fraction of ads is sentence-recoverable.
        let ds = generate_ads(&AdsConfig {
            n_docs: 150,
            ..Default::default()
        });
        let ex = extractor(&ds, "ad_price", ContextScope::Sentence);
        let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
        let gold = ds.gold.tuples("ad_price");
        let covered = gold.iter().filter(|t| reachable.contains(*t)).count() as f64;
        let recall = covered / gold.len() as f64;
        assert!((0.30..0.60).contains(&recall), "text recall {recall}");
    }
}
