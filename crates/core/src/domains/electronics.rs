//! ELECTRONICS task definitions: the four transistor-rating relations of
//! Figure 1 / Table 1, with matchers, throttlers, and the LF library our
//! user study participants' functions are modeled on (§6).

use super::*;
use crate::pipeline::Task;
use fonduer_candidates::Candidate;
use fonduer_candidates::{
    CandidateExtractor, ContextScope, DictionaryMatcher, FnThrottler, MentionType, NamedThrottler,
    NumberRangeMatcher, RelationSchema,
};
use fonduer_datamodel::Document;
use fonduer_supervision::{LabelingFunction, Modality, ABSTAIN, FALSE, TRUE};
use fonduer_synth::SynthDataset;

/// Per-relation specification: which row words identify the right table
/// row, the electrical symbol, the value range, and the unit.
struct RelSpec {
    rel: &'static str,
    /// Words that must all appear in the value's row.
    pos: &'static [&'static str],
    /// The symbol token (e.g. `"ic"`).
    sym: &'static str,
    range: (f64, f64),
    unit: &'static str,
}

const SPECS: [RelSpec; 4] = [
    RelSpec {
        rel: "has_collector_current",
        pos: &["collector", "current"],
        sym: "ic",
        range: (100.0, 995.0),
        unit: "ma",
    },
    RelSpec {
        rel: "max_ce_voltage",
        pos: &["collector", "emitter", "voltage"],
        sym: "vceo",
        range: (1.0, 120.0),
        unit: "v",
    },
    RelSpec {
        rel: "max_cb_voltage",
        pos: &["collector", "base", "voltage"],
        sym: "vcbo",
        range: (1.0, 120.0),
        unit: "v",
    },
    RelSpec {
        rel: "max_eb_voltage",
        pos: &["emitter", "base", "voltage"],
        sym: "vebo",
        range: (1.0, 120.0),
        unit: "v",
    },
];

/// Row words indicating a non-rating row (temperature, characteristics
/// table rows, power).
const NEG_ROW_WORDS: &[&str] = &[
    "temperature",
    "storage",
    "junction",
    "dissipation",
    "gain",
    "frequency",
    "capacitance",
    "saturation",
    "type",
];

fn spec(rel: &str) -> &'static RelSpec {
    SPECS.iter().find(|s| s.rel == rel).expect("known relation")
}

/// Candidate extractor for one ELECTRONICS relation at a given scope.
pub fn extractor(ds: &SynthDataset, rel: &str, scope: ContextScope) -> CandidateExtractor {
    let s = spec(rel);
    CandidateExtractor::new(
        RelationSchema::new(rel, &["part", "value"]),
        vec![
            MentionType::new(
                "part",
                Box::new(DictionaryMatcher::new(ds.dictionary("parts"))),
            ),
            MentionType::new(
                "value",
                Box::new(NumberRangeMatcher::new(s.range.0, s.range.1)),
            ),
        ],
    )
    .with_scope(scope)
}

/// The default throttler (Example 3.4's style): keep candidates whose value
/// is in a table, or whose sentence carries the unit / symbol (covers the
/// rare in-sentence statements).
pub fn default_throttler(rel: &'static str) -> Box<NamedThrottler> {
    let s = spec(rel);
    Box::new(NamedThrottler::new(
        "value_in_table_or_unit_sentence",
        Box::new(FnThrottler(move |doc: &Document, cand: &Candidate| {
            let v = arg(cand, 1);
            if in_table(doc, v) {
                return true;
            }
            let words = sentence_words(doc, v);
            any_in(&words, &[s.unit, s.sym])
        })),
    ))
}

/// The LF library for one ELECTRONICS relation (16 LFs on average per the
/// paper; ours has 12 spanning all four modalities).
pub fn lfs(rel: &str) -> Vec<LabelingFunction> {
    let s = spec(rel);
    let pos: Vec<&'static str> = s.pos.to_vec();
    let sym = s.sym;
    let unit = s.unit;
    let mut out: Vec<LabelingFunction> = Vec::new();
    // --- Tabular ---
    let pos2 = pos.clone();
    out.push(LabelingFunction::new(
        format!("{rel}:row_has_label_words"),
        Modality::Tabular,
        move |doc, cand| {
            let row = row_words(doc, arg(cand, 1));
            if row.is_empty() {
                ABSTAIN
            } else if all_in(&row, &pos2) {
                TRUE
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:row_has_symbol"),
        Modality::Tabular,
        move |doc, cand| {
            let row = row_words(doc, arg(cand, 1));
            if row.is_empty() {
                ABSTAIN
            } else if any_in(&row, &[sym]) {
                TRUE
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:row_is_other_rating"),
        Modality::Tabular,
        |doc, cand| {
            let row = row_words(doc, arg(cand, 1));
            if any_in(&row, NEG_ROW_WORDS) {
                FALSE
            } else {
                ABSTAIN
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:minmax_column"),
        Modality::Tabular,
        |doc, cand| {
            let hdr = col_header_words(doc, arg(cand, 1));
            if any_in(&hdr, &["min", "max"]) {
                FALSE
            } else {
                ABSTAIN
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:value_column_header"),
        Modality::Tabular,
        |doc, cand| {
            // Negative-only filter (the paper uses "Value in column header"
            // as a throttler): a labeled non-Value column is wrong, but
            // being in the Value column does not identify the row.
            let hdr = col_header_words(doc, arg(cand, 1));
            if hdr.is_empty() || any_in(&hdr, &["value"]) {
                ABSTAIN
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:row_has_unit"),
        Modality::Tabular,
        move |doc, cand| {
            // Negative-only: a row carrying the wrong unit cannot hold this
            // relation's value; the right unit alone does not pick the row.
            let v = arg(cand, 1);
            if !in_table(doc, v) {
                return ABSTAIN;
            }
            let mut words = row_words(doc, v);
            words.extend(sentence_words(doc, v));
            if any_in(&words, &[unit]) {
                ABSTAIN
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:not_in_table"),
        Modality::Tabular,
        move |doc, cand| {
            let v = arg(cand, 1);
            if in_table(doc, v) {
                return ABSTAIN;
            }
            // Flat-converted rating lines keep their unit/symbol in the
            // sentence; only unit-less free-text numbers are vetoed.
            let words = sentence_words(doc, v);
            if any_in(&words, &[unit, sym]) {
                ABSTAIN
            } else {
                FALSE
            }
        },
    ));
    // --- Visual ---
    let pos3 = pos.clone();
    out.push(LabelingFunction::new(
        format!("{rel}:aligned_with_label"),
        Modality::Visual,
        move |doc, cand| {
            // Same visual line only (Example 3.5's y-axis alignment).
            let al = h_aligned_lemmas(doc, arg(cand, 1));
            if al.is_empty() {
                ABSTAIN
            } else if all_in(&al, &pos3) || any_in(&al, &[sym]) {
                TRUE
            } else {
                FALSE
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:value_on_late_page"),
        Modality::Visual,
        |doc, cand| match arg(cand, 1).page(doc) {
            Some(p) if p > 2 => FALSE,
            _ => ABSTAIN,
        },
    ));
    // --- Structural ---
    out.push(LabelingFunction::new(
        format!("{rel}:part_not_in_header"),
        Modality::Structural,
        |doc, cand| {
            let p = arg(cand, 0);
            let tag = tag_of(doc, p);
            if tag == "h1" || in_table(doc, p) {
                ABSTAIN
            } else {
                FALSE
            }
        },
    ));
    // --- Textual ---
    let pos4 = pos.clone();
    out.push(LabelingFunction::new(
        format!("{rel}:same_sentence_statement"),
        Modality::Textual,
        move |doc, cand| {
            let p = arg(cand, 0);
            let v = arg(cand, 1);
            if p.sentence != v.sentence {
                return ABSTAIN;
            }
            let words = sentence_words(doc, v);
            if any_in(&words, &[sym]) || all_in(&words, &pos4) {
                TRUE
            } else {
                ABSTAIN
            }
        },
    ));
    let pos5 = pos.clone();
    out.push(LabelingFunction::new(
        format!("{rel}:sentence_mentions_quantity"),
        Modality::Textual,
        move |doc, cand| {
            let words = sentence_words(doc, arg(cand, 1));
            if any_in(&words, NEG_ROW_WORDS) {
                return ABSTAIN;
            }
            if any_in(&words, &[unit]) && (any_in(&words, &[sym]) || all_in(&words, &pos5)) {
                TRUE
            } else {
                ABSTAIN
            }
        },
    ));
    let others: Vec<&'static str> = [
        "ic", "vceo", "vcbo", "vebo", "ptot", "tj", "tstg", "hfe", "vcesat", "ccb",
    ]
    .into_iter()
    .filter(|w| *w != sym)
    .collect();
    out.push(LabelingFunction::new(
        format!("{rel}:wrong_symbol_in_flat_line"),
        Modality::Textual,
        move |doc, cand| {
            // Flat-converted rating lines carry their electrical symbol in
            // the sentence; a different relation's symbol means a different
            // rating.
            let v = arg(cand, 1);
            if in_table(doc, v) {
                return ABSTAIN;
            }
            let words = sentence_words(doc, v);
            if any_in(&words, &others) && !any_in(&words, &[sym]) {
                FALSE
            } else {
                ABSTAIN
            }
        },
    ));
    out.push(LabelingFunction::new(
        format!("{rel}:sentence_is_about_gain"),
        Modality::Textual,
        |doc, cand| {
            let words = sentence_words(doc, arg(cand, 1));
            if any_in(&words, &["gain", "temperature", "dissipation"]) {
                FALSE
            } else {
                ABSTAIN
            }
        },
    ));
    out
}

/// The complete ELECTRONICS tasks (one per relation) at document scope with
/// the default throttler.
pub fn tasks(ds: &SynthDataset) -> Vec<Task> {
    SPECS
        .iter()
        .map(|s| Task {
            extractor: extractor(ds, s.rel, ContextScope::Document)
                .with_throttler(default_throttler(s.rel)),
            lfs: lfs(s.rel),
        })
        .collect()
}

/// The ordered LF library a simulated user authors during the §6 study
/// (maximum collector-emitter voltage task), with the modality mix the
/// paper reports (tabular-dominant).
pub fn user_study_library() -> Vec<LabelingFunction> {
    let mut lib = lfs("max_ce_voltage");
    // Order as a user would write them: strongest tabular signals first.
    let order = [
        "max_ce_voltage:row_has_symbol",
        "max_ce_voltage:row_has_label_words",
        "max_ce_voltage:row_is_other_rating",
        "max_ce_voltage:aligned_with_label",
        "max_ce_voltage:minmax_column",
        "max_ce_voltage:sentence_mentions_quantity",
        "max_ce_voltage:not_in_table",
        "max_ce_voltage:row_has_unit",
        "max_ce_voltage:value_on_late_page",
        "max_ce_voltage:wrong_symbol_in_flat_line",
        "max_ce_voltage:part_not_in_header",
    ];
    let mut ordered = Vec::new();
    for name in order {
        if let Some(pos) = lib.iter().position(|lf| lf.name == name) {
            ordered.push(lib.remove(pos));
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_task, PipelineConfig};
    use fonduer_synth::{generate_electronics, ElectronicsConfig};

    fn ds() -> SynthDataset {
        generate_electronics(&ElectronicsConfig {
            n_docs: 30,
            ..Default::default()
        })
    }

    #[test]
    fn extractor_finds_gold_tuples() {
        let ds = ds();
        let ex = extractor(&ds, "has_collector_current", ContextScope::Document);
        let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
        let gold = ds.gold.tuples("has_collector_current");
        let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
        assert_eq!(covered, gold.len(), "document scope reaches all gold");
    }

    #[test]
    fn throttler_keeps_gold_reachability() {
        let ds = ds();
        // The voltage relations have free-text distractor numbers (e.g. the
        // "0.1 mA to 100 mA" feature bullet) that the throttler prunes.
        let ex = extractor(&ds, "max_ce_voltage", ContextScope::Document)
            .with_throttler(default_throttler("max_ce_voltage"));
        let unthrottled = extractor(&ds, "max_ce_voltage", ContextScope::Document);
        let kept = ex.extract(&ds.corpus).len();
        let all = unthrottled.extract(&ds.corpus).len();
        assert!(kept < all, "throttler prunes ({kept} vs {all})");
        let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
        let gold = ds.gold.tuples("max_ce_voltage");
        let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
        assert!(
            covered as f64 >= 0.95 * gold.len() as f64,
            "{covered}/{}",
            gold.len()
        );
    }

    #[test]
    fn lf_library_spans_modalities() {
        let lfs = lfs("has_collector_current");
        assert!(lfs.len() >= 10);
        for m in [
            Modality::Textual,
            Modality::Structural,
            Modality::Tabular,
            Modality::Visual,
        ] {
            assert!(lfs.iter().any(|lf| lf.modality == m), "{m:?} missing");
        }
    }

    #[test]
    fn user_study_library_is_tabular_dominant() {
        let lib = user_study_library();
        assert!(lib.len() >= 7);
        let tab = lib
            .iter()
            .filter(|lf| lf.modality == Modality::Tabular)
            .count();
        assert!(tab as f64 / lib.len() as f64 > 0.5);
    }

    #[test]
    fn end_to_end_quality_is_high() {
        let ds = generate_electronics(&ElectronicsConfig {
            n_docs: 60,
            ..Default::default()
        });
        let task = &tasks(&ds)[0];
        let cfg = PipelineConfig::default();
        let out = run_task(&ds.corpus, &ds.gold, task, &cfg);
        assert!(out.label_coverage > 0.5, "coverage {}", out.label_coverage);
        assert!(
            out.metrics.f1 > 0.6,
            "F1 {} (p={} r={})",
            out.metrics.f1,
            out.metrics.precision,
            out.metrics.recall
        );
    }
}
