//! Task definitions for the paper's four evaluation applications: matchers,
//! throttlers, and labeling-function libraries written exactly the way a
//! Fonduer user would write them (paper Examples 3.3–3.5), but in Rust.

pub mod ads;
pub mod electronics;
pub mod genomics;
pub mod paleo;

use fonduer_candidates::Candidate;
use fonduer_datamodel::{CellId, ContextRef, Document, Span};

/// Lower-cased words of the cells sharing the span's table row (empty when
/// the span is not inside a cell). Mirrors Example 3.5's `row_ngrams`.
pub fn row_words(doc: &Document, span: Span) -> Vec<String> {
    match doc.cell_of_sentence(span.sentence) {
        Some(cell) => doc.row_words(cell),
        None => Vec::new(),
    }
}

/// Lower-cased words of the span's column-header cells (Example 3.4's
/// `header_ngrams`).
pub fn col_header_words(doc: &Document, span: Span) -> Vec<String> {
    match doc.cell_of_sentence(span.sentence) {
        Some(cell) => doc.col_header_words(cell),
        None => Vec::new(),
    }
}

/// Whether the span lives inside a table cell.
pub fn in_table(doc: &Document, span: Span) -> bool {
    doc.cell_of_sentence(span.sentence).is_some()
}

/// Lower-cased words of the span's own sentence.
pub fn sentence_words(doc: &Document, span: Span) -> Vec<String> {
    doc.sentence(span.sentence)
        .words(doc)
        .map(|w| w.to_lowercase())
        .collect()
}

/// Lemmas of the span's own sentence.
pub fn sentence_lemmas(doc: &Document, span: Span) -> Vec<String> {
    doc.sentence(span.sentence)
        .lemmas(doc)
        .map(|l| l.to_string())
        .collect()
}

/// Lower-cased caption words of the table containing the span, if any.
pub fn caption_words(doc: &Document, span: Span) -> Vec<String> {
    let Some(table) = doc.table_of_sentence(span.sentence) else {
        return Vec::new();
    };
    let Some(cap) = doc.table(table).caption else {
        return Vec::new();
    };
    doc.sentences_in(ContextRef::Caption(cap))
        .into_iter()
        .flat_map(|sid| {
            doc.sentence(sid)
                .words(doc)
                .map(|w| w.to_lowercase())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Lower-cased words of the span's whole paragraph (all sibling sentences).
pub fn paragraph_words(doc: &Document, span: Span) -> Vec<String> {
    let para = doc.sentence(span.sentence).parent;
    doc.paragraph(para)
        .sentences
        .iter()
        .flat_map(|&sid| {
            doc.sentence(sid)
                .words(doc)
                .map(|w| w.to_lowercase())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Lemmas visually aligned with the span on its page (empty without a
/// rendering).
pub fn aligned_lemmas(doc: &Document, span: Span) -> Vec<String> {
    let (Some(page), Some(bbox)) = (span.page(doc), span.bbox(doc)) else {
        return Vec::new();
    };
    doc.visually_aligned_lemmas(page, &bbox, span.sentence)
}

/// Lemmas horizontally aligned with the span (same visual line).
pub fn h_aligned_lemmas(doc: &Document, span: Span) -> Vec<String> {
    let (Some(page), Some(bbox)) = (span.page(doc), span.bbox(doc)) else {
        return Vec::new();
    };
    doc.horizontally_aligned_lemmas(page, &bbox, span.sentence)
}

/// Whether any of `words` appears in `haystack` (all lower-case).
pub fn any_in(haystack: &[String], words: &[&str]) -> bool {
    words.iter().any(|w| haystack.iter().any(|h| h == w))
}

/// Whether all of `words` appear in `haystack`.
pub fn all_in(haystack: &[String], words: &[&str]) -> bool {
    words.iter().all(|w| haystack.iter().any(|h| h == w))
}

/// The cell of a span, if any.
pub fn cell_of(doc: &Document, span: Span) -> Option<CellId> {
    doc.cell_of_sentence(span.sentence)
}

/// Structural tag of the span's sentence.
pub fn tag_of(doc: &Document, span: Span) -> String {
    doc.sentence(span.sentence).structural.tag.clone()
}

/// Numeric values appearing in the span's table row (parsed row words).
pub fn row_numbers(doc: &Document, span: Span) -> Vec<f64> {
    row_words(doc, span)
        .iter()
        .filter_map(|w| w.parse::<f64>().ok())
        .collect()
}

/// Convenience accessors on candidates: the mention span of argument `i`.
pub fn arg(cand: &Candidate, i: usize) -> Span {
    cand.mentions[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fonduer_datamodel::DocFormat;
    use fonduer_parser::{parse_document, ParseOptions};

    fn doc() -> Document {
        parse_document(
            "d",
            r#"<table><caption>Maximum Ratings</caption>
               <tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>200</td></tr></table>
               <p>Free text 42 here.</p>"#,
            DocFormat::Pdf,
            &ParseOptions::default(),
        )
    }

    fn span_of(d: &Document, word: &str) -> Span {
        for sid in d.sentence_ids() {
            if let Some(i) = d.sentence(sid).words(d).position(|w| w == word) {
                return Span::new(sid, i as u32, i as u32 + 1);
            }
        }
        panic!("{word} missing");
    }

    #[test]
    fn helpers_on_table_span() {
        let d = doc();
        let v = span_of(&d, "200");
        assert!(in_table(&d, v));
        assert!(any_in(&row_words(&d, v), &["current"]));
        assert!(all_in(&row_words(&d, v), &["collector", "current"]));
        assert!(any_in(&col_header_words(&d, v), &["value"]));
        assert!(any_in(&caption_words(&d, v), &["ratings"]));
        assert_eq!(tag_of(&d, v), "td");
        assert!(!aligned_lemmas(&d, v).is_empty());
    }

    #[test]
    fn helpers_on_text_span() {
        let d = doc();
        let t = span_of(&d, "42");
        assert!(!in_table(&d, t));
        assert!(row_words(&d, t).is_empty());
        assert!(caption_words(&d, t).is_empty());
        assert!(any_in(&sentence_words(&d, t), &["free"]));
        assert_eq!(tag_of(&d, t), "p");
    }

    #[test]
    fn row_numbers_parse() {
        let d = doc();
        // The label cell "Collector current" shares a row with "200".
        let label = span_of(&d, "Collector");
        assert_eq!(row_numbers(&d, label), vec![200.0]);
    }
}
