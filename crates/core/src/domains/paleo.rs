//! PALEONTOLOGY task definitions: ten relations linking text-borne entities
//! (taxa, formations) to table-borne facts (measurements, stratigraphy)
//! across many-page articles (paper §5.1).

use super::*;
use crate::pipeline::Task;
use fonduer_candidates::{
    CandidateExtractor, ContextScope, DictionaryMatcher, FnThrottler, MentionType,
    NumberRangeMatcher, RelationSchema,
};
use fonduer_supervision::{LabelingFunction, Modality, ABSTAIN, FALSE, TRUE};
use fonduer_synth::SynthDataset;

/// Skeletal elements with a measurement relation each.
pub const ELEMENTS: [&str; 7] = [
    "femur", "tibia", "skull", "humerus", "ulna", "scapula", "ilium",
];

/// All ten PALEO relation names.
pub fn relations() -> Vec<String> {
    let mut out = vec![
        "formation_period".to_string(),
        "formation_location".to_string(),
        "taxon_formation".to_string(),
    ];
    for e in ELEMENTS {
        out.push(format!("taxon_measurement_{e}"));
    }
    out
}

/// Candidate extractor for one PALEO relation.
pub fn extractor(ds: &SynthDataset, rel: &str, scope: ContextScope) -> CandidateExtractor {
    let taxon = || {
        MentionType::new(
            "taxon",
            Box::new(DictionaryMatcher::new(ds.dictionary("taxa"))),
        )
    };
    let formation = || {
        MentionType::new(
            "formation",
            Box::new(DictionaryMatcher::new(ds.dictionary("formations"))),
        )
    };
    match rel {
        "formation_period" => CandidateExtractor::new(
            RelationSchema::new(rel, &["formation", "period"]),
            vec![
                formation(),
                MentionType::new(
                    "period",
                    Box::new(DictionaryMatcher::new(ds.dictionary("periods"))),
                ),
            ],
        )
        .with_scope(scope),
        "formation_location" => CandidateExtractor::new(
            RelationSchema::new(rel, &["formation", "location"]),
            vec![
                formation(),
                MentionType::new(
                    "location",
                    Box::new(DictionaryMatcher::new(ds.dictionary("countries"))),
                ),
            ],
        )
        .with_scope(scope),
        "taxon_formation" => CandidateExtractor::new(
            RelationSchema::new(rel, &["taxon", "formation"]),
            vec![taxon(), formation()],
        )
        .with_scope(scope),
        _ if rel.starts_with("taxon_measurement_") => CandidateExtractor::new(
            RelationSchema::new(rel, &["taxon", "value"]),
            vec![
                taxon(),
                MentionType::new("value", Box::new(NumberRangeMatcher::new(100.0, 1600.0))),
            ],
        )
        .with_scope(scope)
        // Measurements only occur inside tables; prune free-text numbers
        // (specimen ids, years, coordinates).
        .with_throttler(Box::new(fonduer_candidates::NamedThrottler::new(
            "measurement_in_table",
            Box::new(FnThrottler(|doc: &Document, cand: &Candidate| {
                in_table(doc, arg(cand, 1))
            })),
        ))),
        other => panic!("unknown PALEO relation {other}"),
    }
}

/// Labeling functions for one PALEO relation.
pub fn lfs(rel: &str) -> Vec<LabelingFunction> {
    let mut out: Vec<LabelingFunction> = Vec::new();
    if let Some(element) = rel.strip_prefix("taxon_measurement_") {
        let element: &'static str = ELEMENTS
            .iter()
            .find(|e| **e == element)
            .expect("known element");
        // LFs for document-level relations are written over the *candidate*
        // — conjunctions across both mentions — because each side alone is
        // uninformative (the title taxon pairs with every number in the
        // document). This mirrors how the paper's users combine modalities
        // in one function (§6).
        out.push(LabelingFunction::new(
            format!("{rel}:element_row_with_focal_taxon"),
            Modality::Tabular,
            move |doc: &Document, cand: &Candidate| {
                let row = row_words(doc, arg(cand, 1));
                if row.is_empty() || !any_in(&row, &[element]) {
                    return FALSE; // value not in this element's row
                }
                // Right row; require the taxon side to look focal.
                if tag_of(doc, arg(cand, 0)) == "h1" {
                    TRUE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:holotype_taxon_with_element_row"),
            Modality::Textual,
            move |doc: &Document, cand: &Candidate| {
                let w = paragraph_words(doc, arg(cand, 0));
                if !any_in(&w, &["holotype"]) {
                    return ABSTAIN;
                }
                let row = row_words(doc, arg(cand, 1));
                let cap = caption_words(doc, arg(cand, 1));
                if any_in(&row, &[element]) && !any_in(&cap, &["comparative"]) {
                    TRUE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:strat_rows"),
            Modality::Tabular,
            |doc: &Document, cand: &Candidate| {
                let row = row_words(doc, arg(cand, 1));
                if any_in(&row, &["thickness", "stage", "region"]) {
                    FALSE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:comparative_caption"),
            Modality::Tabular,
            |doc: &Document, cand: &Candidate| {
                let cap = caption_words(doc, arg(cand, 1));
                if any_in(&cap, &["comparative"]) {
                    FALSE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:caption_names_taxon"),
            Modality::Tabular,
            move |doc: &Document, cand: &Candidate| {
                // The rare documents whose measurement caption names the
                // taxon directly (genus word match).
                let row = row_words(doc, arg(cand, 1));
                let cap = caption_words(doc, arg(cand, 1));
                let taxon = arg(cand, 0);
                let genus = doc
                    .sentence(taxon.sentence)
                    .word(doc, taxon.start as usize)
                    .to_lowercase();
                if cap.contains(&genus) && any_in(&row, &[element]) {
                    TRUE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:comparison_taxon"),
            Modality::Textual,
            |doc: &Document, cand: &Candidate| {
                let w = sentence_lemmas(doc, arg(cand, 0));
                if any_in(&w, &["relative", "compare", "compared"]) {
                    FALSE
                } else {
                    ABSTAIN
                }
            },
        ));
        out.push(LabelingFunction::new(
            format!("{rel}:value_early_page"),
            Modality::Visual,
            |doc: &Document, cand: &Candidate| {
                // Measurement tables live deep in the article; numbers on
                // page 1 (abstract, geology) are not measurements.
                match arg(cand, 1).page(doc) {
                    Some(1) => FALSE,
                    _ => ABSTAIN,
                }
            },
        ));
        return out;
    }
    match rel {
        "formation_period" => {
            out.push(LabelingFunction::new(
                "formation_period:stage_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["stage"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "formation_period:collected_text",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 0));
                    if any_in(&w, &["collect", "collected", "exposure"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "formation_location" => {
            out.push(LabelingFunction::new(
                "formation_location:region_row",
                Modality::Tabular,
                |doc: &Document, cand: &Candidate| {
                    let row = row_words(doc, arg(cand, 1));
                    if row.is_empty() {
                        ABSTAIN
                    } else if any_in(&row, &["region"]) {
                        TRUE
                    } else {
                        FALSE
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "formation_location:collected_text",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 0));
                    if any_in(&w, &["collect", "collected", "exposure"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        "taxon_formation" => {
            out.push(LabelingFunction::new(
                "taxon_formation:taxon_in_title",
                Modality::Structural,
                |doc: &Document, cand: &Candidate| {
                    if tag_of(doc, arg(cand, 0)) == "h1" {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "taxon_formation:comparison_taxon",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 0));
                    if any_in(&w, &["relative", "compare", "compared"]) {
                        FALSE
                    } else {
                        ABSTAIN
                    }
                },
            ));
            out.push(LabelingFunction::new(
                "taxon_formation:collected_from",
                Modality::Textual,
                |doc: &Document, cand: &Candidate| {
                    let w = sentence_lemmas(doc, arg(cand, 1));
                    if any_in(&w, &["collect", "collected", "exposure"]) {
                        TRUE
                    } else {
                        ABSTAIN
                    }
                },
            ));
        }
        other => panic!("unknown PALEO relation {other}"),
    }
    out
}

/// The complete PALEO tasks at document scope.
pub fn tasks(ds: &SynthDataset) -> Vec<Task> {
    relations()
        .iter()
        .map(|rel| Task {
            extractor: extractor(ds, rel, ContextScope::Document),
            lfs: lfs(rel),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_task, PipelineConfig};
    use fonduer_synth::{generate_paleo, PaleoConfig};

    fn ds() -> SynthDataset {
        generate_paleo(&PaleoConfig {
            n_docs: 40,
            filler_paragraphs: 25,
            ..Default::default()
        })
    }

    #[test]
    fn ten_tasks_defined() {
        let ds = ds();
        assert_eq!(tasks(&ds).len(), 10);
        assert_eq!(relations().len(), 10);
    }

    #[test]
    fn document_scope_reaches_gold() {
        let ds = ds();
        for rel in [
            "taxon_measurement_femur",
            "formation_period",
            "taxon_formation",
        ] {
            let ex = extractor(&ds, rel, ContextScope::Document);
            let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
            let gold = ds.gold.tuples(rel);
            let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
            assert_eq!(covered, gold.len(), "{rel}");
        }
    }

    #[test]
    fn sentence_scope_reaches_nothing() {
        let ds = ds();
        for rel in ["taxon_measurement_femur", "formation_period"] {
            let ex = extractor(&ds, rel, ContextScope::Sentence);
            let reachable = crate::pipeline::reachable_tuples(&ds.corpus, &ex);
            let gold = ds.gold.tuples(rel);
            let covered = gold.iter().filter(|t| reachable.contains(*t)).count();
            assert_eq!(covered, 0, "{rel}");
        }
    }

    #[test]
    fn end_to_end_femur_quality() {
        let ds = ds();
        let rel = "taxon_measurement_femur";
        let task = Task {
            extractor: extractor(&ds, rel, ContextScope::Document),
            lfs: lfs(rel),
        };
        let out = run_task(&ds.corpus, &ds.gold, &task, &PipelineConfig::default());
        assert!(
            out.metrics.f1 > 0.4,
            "F1 {} (p={} r={})",
            out.metrics.f1,
            out.metrics.precision,
            out.metrics.recall
        );
    }
}
