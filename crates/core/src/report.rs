//! [`RunReport`]: the queryable join of everything the observability
//! substrate knows about a pipeline run.
//!
//! One struct answers the error-analysis questions the paper's §5 workflow
//! and ROADMAP items 1–2 keep asking: *which stage dominated wall time at
//! this thread count* (critical path), *did the cache actually save work*
//! (per-stage hit/miss), *was the pool busy or starved* (utilization,
//! steal/local split, queue depth), and *which documents were slow, in
//! which stage* (top-K slowest documents from the bounded DocTimings
//! table). [`PipelineSession::run_report`](crate::PipelineSession::run_report)
//! assembles it from the session's own state plus the `fonduer-observe`
//! registry; [`RunReport::render_text`] / [`RunReport::render_jsonl`] give
//! a terminal view and a machine-readable one.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::pipeline::Timings;
use crate::session::shard_cache::ShardCacheSummary;
use crate::session::{SessionStats, StageId};
use fonduer_observe as observe;
use fonduer_observe::HistogramSummary;

/// The doc-timing stage keys and the leaf span each one's work runs under.
/// `candgen` wraps `extract_corpus`, `featurize` wraps `featurize_corpus`,
/// and the supervise stage's per-document work is LF application
/// (`lf_apply`); the generative model and diagnostics are corpus-global.
pub const DOC_STAGES: [(&str, &str); 3] = [
    ("candgen", "extract_corpus"),
    ("featurize", "featurize_corpus"),
    ("lf_apply", "lf_apply"),
];

/// Wall time of one pipeline stage in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage label (`candgen`, `featurize`, `supervise`, `train`, `infer`).
    pub stage: &'static str,
    /// Wall time of the most recent traversal (zero when the stage was
    /// served from cache).
    pub last_us: u64,
    /// Aggregate inclusive span time across the whole process (all runs).
    pub span_total_us: u64,
    /// Completed span invocations across the process.
    pub span_count: u64,
}

/// Work-stealing pool telemetry, snapshot at report time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolTelemetry {
    /// Tasks scheduled (all executions).
    pub tasks: u64,
    /// Tasks that ran on a worker other than their assigned one.
    pub steals: u64,
    /// Tasks served from the worker's own queue.
    pub local_hits: u64,
    /// Busy-fraction of the most recent pool execution (0..=1).
    pub utilization: f64,
    /// Worker count of the most recent pool execution.
    pub workers: u64,
    /// Per-worker busy time, µs.
    pub busy_us: Option<HistogramSummary>,
    /// Per-worker idle time, µs.
    pub idle_us: Option<HistogramSummary>,
    /// Queued backlog sampled at steal points.
    pub queue_depth: Option<HistogramSummary>,
}

/// One document's per-stage timings, slowest documents first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocReport {
    /// Document name.
    pub doc: String,
    /// Doc-timing stage key (see [`DOC_STAGES`]) → accumulated ns.
    pub stage_ns: BTreeMap<&'static str, u64>,
    /// Sum across stages, ns.
    pub total_ns: u64,
}

/// Per-stage reconciliation of the DocTimings table against the span
/// registry: how much of the stage's measured span time the per-document
/// shards account for.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCoverage {
    /// Doc-timing stage key.
    pub stage: &'static str,
    /// Leaf span the stage's per-document work runs under.
    pub span_leaf: &'static str,
    /// Sum of per-document ns recorded for this stage.
    pub doc_sum_ns: u64,
    /// Aggregate inclusive time of the leaf span, ns.
    pub span_total_ns: u64,
    /// Aggregate `par.worker` span time under that leaf, ns (zero on
    /// sequential runs — the work happened inside the leaf span itself).
    pub worker_ns: u64,
}

impl StageCoverage {
    /// `doc_sum_ns` over the stage's measured work time: the worker spans
    /// when the stage ran parallel, the leaf span itself when sequential.
    /// Per-document shards are measured *inside* the workers, so this is
    /// ≤ ~1 plus timer noise; a large shortfall means documents were
    /// dropped (cap) or the stage was cache-skipped after a reset.
    pub fn ratio(&self) -> f64 {
        let denom = self.worker_ns.max(self.span_total_ns);
        if denom == 0 {
            return 0.0;
        }
        self.doc_sum_ns as f64 / denom as f64
    }
}

/// Which stage dominated the most recent traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The dominant stage's label.
    pub stage: &'static str,
    /// Its wall time, µs.
    pub stage_us: u64,
    /// The traversal's total wall time, µs.
    pub total_us: u64,
    /// `stage_us / total_us` (0 when the traversal was fully cached).
    pub fraction: f64,
}

/// A queryable join of span summaries, cache statistics, pool telemetry,
/// and per-document stage timings for one session. Built by
/// [`crate::PipelineSession::run_report`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-stage wall times (last traversal + process-wide span totals).
    pub stages: Vec<StageTiming>,
    /// The session's cache hit/miss counters.
    pub cache: SessionStats,
    /// Per-document shard-cache counters plus the last traversal's
    /// recomputed-document count (the incremental-recomputation layer).
    pub shards: ShardCacheSummary,
    /// Work-stealing pool telemetry.
    pub pool: PoolTelemetry,
    /// Per-document stage timings, slowest first (bounded by
    /// `FONDUER_DOC_TIMINGS_CAP`).
    pub docs: Vec<DocReport>,
    /// Documents dropped from the table after the cap was reached.
    pub docs_dropped: u64,
    /// Effective thread count the session ran with.
    pub n_threads: usize,
}

impl RunReport {
    /// Assemble a report from the session's last-traversal timings and
    /// cache stats plus the current `fonduer-observe` registry state.
    pub(crate) fn collect(
        timings: &Timings,
        cache: SessionStats,
        shards: ShardCacheSummary,
        n_threads: usize,
    ) -> Self {
        let snap = observe::snapshot();
        let last = |id: StageId| -> u64 {
            let d = match id {
                StageId::Candidates => timings.candgen,
                StageId::Featurize => timings.featurize,
                StageId::Supervise => timings.supervise,
                StageId::Train => timings.train,
                StageId::Infer => timings.infer,
                StageId::Evaluate => return 0,
            };
            d.as_micros().min(u64::MAX as u128) as u64
        };
        let stages = [
            StageId::Candidates,
            StageId::Featurize,
            StageId::Supervise,
            StageId::Train,
            StageId::Infer,
        ]
        .into_iter()
        .map(|id| {
            let (total, count) = leaf_span_sum(&snap, id.name());
            StageTiming {
                stage: id.name(),
                last_us: last(id),
                span_total_us: total,
                span_count: count,
            }
        })
        .collect();
        let pool = PoolTelemetry {
            tasks: snap.counter("par.tasks"),
            steals: snap.counter("par.steals"),
            local_hits: snap.counter("par.local_hits"),
            utilization: snap.gauges.get("par.utilization").copied().unwrap_or(0.0),
            workers: snap.gauges.get("par.workers").copied().unwrap_or(0.0) as u64,
            busy_us: snap.histograms.get("par.worker_busy_us").copied(),
            idle_us: snap.histograms.get("par.worker_idle_us").copied(),
            queue_depth: snap.histograms.get("par.queue_depth").copied(),
        };
        let docs = observe::doc_timings()
            .into_iter()
            .map(|d| {
                let total_ns = d.total_ns();
                DocReport {
                    doc: d.doc,
                    stage_ns: d.stage_ns,
                    total_ns,
                }
            })
            .collect();
        RunReport {
            stages,
            cache,
            shards,
            pool,
            docs,
            docs_dropped: observe::doc_timings_dropped(),
            n_threads,
        }
    }

    /// The `k` slowest documents (by summed stage time), slowest first.
    pub fn top_slowest_docs(&self, k: usize) -> &[DocReport] {
        &self.docs[..k.min(self.docs.len())]
    }

    /// Which stage dominated the most recent traversal's wall time.
    pub fn critical_path(&self) -> CriticalPath {
        let total_us: u64 = self.stages.iter().map(|s| s.last_us).sum();
        let top = self
            .stages
            .iter()
            .max_by_key(|s| s.last_us)
            .expect("report always has stages");
        CriticalPath {
            stage: top.stage,
            stage_us: top.last_us,
            total_us,
            fraction: if total_us == 0 {
                0.0
            } else {
                top.last_us as f64 / total_us as f64
            },
        }
    }

    /// Reconcile the per-document table against the span registry for each
    /// doc-timed stage (see [`StageCoverage`]).
    pub fn stage_coverage(&self) -> Vec<StageCoverage> {
        let snap = observe::snapshot();
        DOC_STAGES
            .iter()
            .map(|&(stage, leaf)| {
                let (span_total_us, _) = leaf_span_sum(&snap, leaf);
                let worker_us: u64 = snap
                    .spans
                    .iter()
                    .filter(|(p, _)| {
                        p.ends_with(".par.worker") && p.contains(&format!("{leaf}.par.worker"))
                    })
                    .map(|(_, s)| s.total_us)
                    .sum();
                StageCoverage {
                    stage,
                    span_leaf: leaf,
                    doc_sum_ns: self
                        .docs
                        .iter()
                        .map(|d| d.stage_ns.get(stage).copied().unwrap_or(0))
                        .sum(),
                    span_total_ns: span_total_us.saturating_mul(1_000),
                    worker_ns: worker_us.saturating_mul(1_000),
                }
            })
            .collect()
    }

    /// Human-readable rendering: critical path, stage table, cache line,
    /// pool telemetry, and the top-5 slowest documents.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let cp = self.critical_path();
        let _ = writeln!(out, "== run report ({} threads) ==", self.n_threads);
        let _ = writeln!(
            out,
            "critical path: {} ({:.1}ms, {:.0}% of {:.1}ms)",
            cp.stage,
            cp.stage_us as f64 / 1e3,
            cp.fraction * 100.0,
            cp.total_us as f64 / 1e3,
        );
        let _ = writeln!(out, "stages (last run / all runs):");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<10} last={:<10.1} span_total={:<10.1} span_count={}",
                s.stage,
                s.last_us as f64 / 1e3,
                s.span_total_us as f64 / 1e3,
                s.span_count,
            );
        }
        let _ = writeln!(out, "cache: {}", self.cache.to_line());
        let sh = &self.shards;
        let _ = writeln!(
            out,
            "shard cache: hit={} miss={} evict={} cached={} recomputed_docs={}",
            sh.hits, sh.misses, sh.evicts, sh.cached, sh.recomputed_docs,
        );
        let p = &self.pool;
        let _ = writeln!(
            out,
            "pool: workers={} utilization={:.2} tasks={} local_hits={} steals={}",
            p.workers, p.utilization, p.tasks, p.local_hits, p.steals,
        );
        if let (Some(b), Some(i)) = (&p.busy_us, &p.idle_us) {
            let _ = writeln!(
                out,
                "      busy p50={}us p95={}us  idle p50={}us p95={}us",
                b.p50, b.p95, i.p50, i.p95,
            );
        }
        if !self.docs.is_empty() {
            let _ = writeln!(
                out,
                "slowest documents (of {} timed, {} dropped):",
                self.docs.len(),
                self.docs_dropped,
            );
            for d in self.top_slowest_docs(5) {
                let stages: Vec<String> = d
                    .stage_ns
                    .iter()
                    .map(|(s, ns)| format!("{s}={:.1}ms", *ns as f64 / 1e6))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {:<24} total={:.1}ms  {}",
                    d.doc,
                    d.total_ns as f64 / 1e6,
                    stages.join(" "),
                );
            }
        }
        out
    }

    /// Machine-readable rendering: one JSON object per line with a
    /// `"kind"` discriminator (`critical_path` | `stage` | `cache` |
    /// `pool` | `doc`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let cp = self.critical_path();
        let _ = writeln!(
            out,
            "{{\"kind\":\"critical_path\",\"stage\":\"{}\",\"stage_us\":{},\"total_us\":{},\"fraction\":{}}}",
            cp.stage,
            cp.stage_us,
            cp.total_us,
            observe::json::number(cp.fraction),
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{{\"kind\":\"stage\",\"stage\":\"{}\",\"last_us\":{},\"span_total_us\":{},\"span_count\":{}}}",
                s.stage, s.last_us, s.span_total_us, s.span_count,
            );
        }
        for id in StageId::ALL {
            let st = self.cache.stage(id);
            let _ = writeln!(
                out,
                "{{\"kind\":\"cache\",\"stage\":\"{}\",\"hits\":{},\"misses\":{}}}",
                id.name(),
                st.hits,
                st.misses,
            );
        }
        let sh = &self.shards;
        let _ = writeln!(
            out,
            "{{\"kind\":\"shard_cache\",\"hits\":{},\"misses\":{},\"evicts\":{},\"cached\":{},\"recomputed_docs\":{}}}",
            sh.hits, sh.misses, sh.evicts, sh.cached, sh.recomputed_docs,
        );
        let p = &self.pool;
        let _ = writeln!(
            out,
            "{{\"kind\":\"pool\",\"workers\":{},\"utilization\":{},\"tasks\":{},\"local_hits\":{},\"steals\":{}}}",
            p.workers,
            observe::json::number(p.utilization),
            p.tasks,
            p.local_hits,
            p.steals,
        );
        for d in &self.docs {
            let stages: Vec<String> = d
                .stage_ns
                .iter()
                .map(|(s, ns)| format!("\"{s}\":{ns}"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"doc\",\"doc\":\"{}\",\"total_ns\":{},\"stages\":{{{}}}}}",
                observe::json::escape(&d.doc),
                d.total_ns,
                stages.join(","),
            );
        }
        out
    }
}

/// Render labeling-function diagnostics as one JSON object — the payload
/// the `fonduer-obsd` `/lfs` endpoint serves. `correct` and
/// `empirical_accuracy` appear only when gold labels were available.
pub fn lf_diagnostics_json(diag: &fonduer_supervision::LfDiagnostics) -> String {
    let mut out = format!(
        "{{\"n_candidates\":{},\"total_coverage\":{},\"lfs\":[",
        diag.n_candidates,
        observe::json::number(diag.total_coverage),
    );
    for (i, row) in diag.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"coverage\":{},\"overlap\":{},\"conflict\":{},\"positives\":{},\"negatives\":{}",
            observe::json::escape(&row.name),
            observe::json::number(row.coverage),
            observe::json::number(row.overlap),
            observe::json::number(row.conflict),
            row.positives,
            row.negatives,
        );
        if let Some(correct) = row.correct {
            let _ = write!(out, ",\"correct\":{correct}");
        }
        if let Some(acc) = row.empirical_accuracy {
            let _ = write!(
                out,
                ",\"empirical_accuracy\":{}",
                observe::json::number(acc)
            );
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Sum span totals whose dotted path's final name is `leaf` (`"candgen"`
/// matches both the session's bare `candgen` span and `run_task.candgen`;
/// `par.worker` children do not match because their final name differs).
fn leaf_span_sum(snap: &observe::Snapshot, leaf: &str) -> (u64, u64) {
    let suffix = format!(".{leaf}");
    snap.spans
        .iter()
        .filter(|(p, _)| p.as_str() == leaf || p.ends_with(&suffix))
        .fold((0, 0), |(t, c), (_, s)| (t + s.total_us, c + s.count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(docs: Vec<DocReport>, stages: Vec<StageTiming>) -> RunReport {
        RunReport {
            stages,
            cache: SessionStats::default(),
            shards: ShardCacheSummary::default(),
            pool: PoolTelemetry::default(),
            docs,
            docs_dropped: 0,
            n_threads: 1,
        }
    }

    fn stage(stage: &'static str, last_us: u64) -> StageTiming {
        StageTiming {
            stage,
            last_us,
            span_total_us: last_us,
            span_count: 1,
        }
    }

    #[test]
    fn critical_path_picks_dominant_stage() {
        let r = report_with(
            Vec::new(),
            vec![
                stage("candgen", 100),
                stage("featurize", 700),
                stage("train", 200),
            ],
        );
        let cp = r.critical_path();
        assert_eq!(cp.stage, "featurize");
        assert_eq!(cp.total_us, 1000);
        assert!((cp.fraction - 0.7).abs() < 1e-9);
    }

    #[test]
    fn top_slowest_docs_clamps_k() {
        let docs: Vec<DocReport> = (0..3)
            .map(|i| DocReport {
                doc: format!("d{i}"),
                stage_ns: BTreeMap::new(),
                total_ns: 100 - i,
            })
            .collect();
        let r = report_with(docs, vec![stage("candgen", 1)]);
        assert_eq!(r.top_slowest_docs(2).len(), 2);
        assert_eq!(r.top_slowest_docs(99).len(), 3);
        assert_eq!(r.top_slowest_docs(99)[0].doc, "d0");
    }

    #[test]
    fn renderings_are_well_formed() {
        let mut stage_ns = BTreeMap::new();
        stage_ns.insert("candgen", 5_000_000u64);
        stage_ns.insert("featurize", 2_000_000u64);
        let docs = vec![DocReport {
            doc: "weird\"doc".into(),
            stage_ns,
            total_ns: 7_000_000,
        }];
        let r = report_with(docs, vec![stage("candgen", 100), stage("featurize", 50)]);
        let text = r.render_text();
        assert!(text.contains("critical path: candgen"));
        assert!(text.contains("slowest documents"));
        for line in r.render_jsonl().lines() {
            observe::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable report line ({e}): {line}"));
        }
    }
}
