//! Error types for the pipeline surface.
//!
//! The original `run_task` monolith silently tolerated degenerate inputs
//! (a threshold of 1.5, an empty training set) or panicked deep inside a
//! stage (`Corpus::doc` index misses). The staged
//! [`PipelineSession`](crate::PipelineSession) API surfaces those
//! conditions as typed `Result`s instead; `run_task` keeps its historical
//! permissive behavior for source compatibility.

use fonduer_datamodel::DocId;
use std::fmt;

/// A [`PipelineConfig`](crate::PipelineConfig) field outside its valid
/// domain, reported by [`PipelineConfig::validate`](crate::PipelineConfig::validate)
/// and [`PipelineConfigBuilder::build`](crate::PipelineConfigBuilder::build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `threshold` must lie in `[0, 1]`.
    Threshold {
        /// The rejected value.
        value: f32,
    },
    /// `train_frac` must lie in `[0, 1]`.
    TrainFrac {
        /// The rejected value.
        value: f64,
    },
    /// `n_threads` must be at least 1.
    Threads {
        /// The rejected value.
        value: usize,
    },
    /// `vocab_size` must be positive.
    VocabSize {
        /// The rejected value.
        value: usize,
    },
    /// `features.hashing_bits` must be 0 (interned vocab) or in `1..=30`.
    HashingBits {
        /// The rejected value.
        value: u8,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Threshold { value } => {
                write!(f, "classification threshold {value} outside [0, 1]")
            }
            ConfigError::TrainFrac { value } => {
                write!(f, "train_frac {value} outside [0, 1]")
            }
            ConfigError::Threads { value } => {
                write!(f, "n_threads must be >= 1, got {value}")
            }
            ConfigError::VocabSize { value } => {
                write!(f, "vocab_size must be > 0, got {value}")
            }
            ConfigError::HashingBits { value } => {
                write!(f, "features.hashing_bits must be 0 or 1..=30, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything that can go wrong in a [`PipelineSession`](crate::PipelineSession).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The pipeline configuration failed validation.
    Config(ConfigError),
    /// A candidate references a document id the session's corpus does not
    /// contain (previously an index panic inside `Corpus::doc`), or
    /// `remove_document` was called with an id past the end of the corpus.
    DocNotFound {
        /// The missing document id.
        doc: DocId,
        /// Number of documents actually in the corpus.
        n_docs: usize,
    },
    /// An upsert would be ambiguous: the corpus already contains more than
    /// one document with the incoming document's name, so there is no
    /// single document to replace. Document names are the stable identity
    /// the train/test split and the gold KB key on; fix the corpus (names
    /// must be unique) before upserting.
    DuplicateDocId {
        /// The conflicting document name.
        name: String,
        /// How many existing documents carry it.
        count: usize,
    },
    /// Candidate generation produced no candidates, so there is nothing to
    /// train or classify.
    NoCandidates {
        /// The relation being extracted.
        relation: String,
    },
    /// No training candidate received a labeling-function vote: the
    /// discriminative model would train on an empty set and every marginal
    /// would be an uninformed constant.
    EmptyTrainingSet {
        /// The relation being extracted.
        relation: String,
        /// Total extracted candidates.
        n_candidates: usize,
        /// Candidates in the training split.
        n_train: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid pipeline config: {e}"),
            Error::DocNotFound { doc, n_docs } => write!(
                f,
                "candidate references document {doc:?} but the corpus has {n_docs} documents"
            ),
            Error::DuplicateDocId { name, count } => write!(
                f,
                "cannot upsert document {name:?}: {count} existing documents \
                 share that name (document names must be unique)"
            ),
            Error::NoCandidates { relation } => {
                write!(f, "no candidates extracted for relation {relation:?}")
            }
            Error::EmptyTrainingSet {
                relation,
                n_candidates,
                n_train,
            } => write!(
                f,
                "relation {relation:?}: no labeled training candidates \
                 ({n_train} of {n_candidates} candidates are in the training split, \
                 none received an LF vote)"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::from(ConfigError::Threshold { value: 1.5 });
        assert!(e.to_string().contains("1.5"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::EmptyTrainingSet {
            relation: "has_collector_current".into(),
            n_candidates: 10,
            n_train: 4,
        };
        let s = e.to_string();
        assert!(
            s.contains("has_collector_current") && s.contains("4 of 10"),
            "{s}"
        );
        assert!(Error::NoCandidates {
            relation: "r".into()
        }
        .to_string()
        .contains("no candidates"));
        assert!(Error::DocNotFound {
            doc: DocId(7),
            n_docs: 3
        }
        .to_string()
        .contains('3'));
        let s = Error::DuplicateDocId {
            name: "datasheet_0001".into(),
            count: 2,
        }
        .to_string();
        assert!(s.contains("datasheet_0001") && s.contains('2'), "{s}");
    }
}
