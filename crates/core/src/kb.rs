//! The output knowledge base: relation mentions classified "True", stored
//! in a relational form (paper §2.1: "The output of the system is a
//! relational database containing facts extracted from the input").

use crate::eval::Tuple;
use std::collections::BTreeSet;

/// One extracted relation's table.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    /// Relation name.
    pub relation: String,
    /// Argument names (column headers).
    pub arg_names: Vec<String>,
    /// Extracted `(doc, args)` tuples with their marginal probabilities.
    pub entries: Vec<(Tuple, f32)>,
}

impl KnowledgeBase {
    /// Build from classified candidates: keep tuples whose marginal exceeds
    /// `threshold`, deduplicating per `(doc, args)` and keeping the highest
    /// marginal.
    pub fn from_marginals(
        relation: &str,
        arg_names: &[String],
        tuples: impl IntoIterator<Item = (Tuple, f32)>,
        threshold: f32,
    ) -> Self {
        let mut best: std::collections::BTreeMap<Tuple, f32> = Default::default();
        for (t, p) in tuples {
            if p >= threshold {
                let e = best.entry(t).or_insert(p);
                if p > *e {
                    *e = p;
                }
            }
        }
        Self {
            relation: relation.to_string(),
            arg_names: arg_names.to_vec(),
            entries: best.into_iter().collect(),
        }
    }

    /// Distinct `(doc, args)` tuples.
    pub fn tuple_set(&self) -> BTreeSet<Tuple> {
        self.entries.iter().map(|(t, _)| t.clone()).collect()
    }

    /// Entity-level entries: distinct argument tuples across documents
    /// (Table 3 granularity).
    pub fn entity_entries(&self) -> BTreeSet<Vec<String>> {
        self.entries
            .iter()
            .map(|((_, args), _)| args.clone())
            .collect()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the KB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as TSV (header + rows), the relational output format.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("doc\t");
        out.push_str(&self.arg_names.join("\t"));
        out.push_str("\tmarginal\n");
        for ((doc, args), p) in &self.entries {
            out.push_str(doc);
            for a in args {
                out.push('\t');
                out.push_str(a);
            }
            out.push_str(&format!("\t{p:.3}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(doc: &str, args: &[&str]) -> Tuple {
        (doc.into(), args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn threshold_and_dedup() {
        let kb = KnowledgeBase::from_marginals(
            "r",
            &["part".into(), "current".into()],
            vec![
                (t("d1", &["a", "1"]), 0.9),
                (t("d1", &["a", "1"]), 0.7), // duplicate, lower marginal
                (t("d1", &["b", "2"]), 0.3), // below threshold
            ],
            0.5,
        );
        assert_eq!(kb.len(), 1);
        assert_eq!(kb.entries[0].1, 0.9);
        assert_eq!(kb.entity_entries().len(), 1);
    }

    #[test]
    fn entity_entries_collapse_docs() {
        let kb = KnowledgeBase::from_marginals(
            "r",
            &["x".into()],
            vec![(t("d1", &["a"]), 0.9), (t("d2", &["a"]), 0.8)],
            0.5,
        );
        assert_eq!(kb.len(), 2);
        assert_eq!(kb.entity_entries().len(), 1);
    }

    #[test]
    fn tsv_rendering() {
        let kb = KnowledgeBase::from_marginals(
            "r",
            &["part".into(), "current".into()],
            vec![(t("d1", &["smbt3904", "200"]), 0.95)],
            0.5,
        );
        let tsv = kb.to_tsv();
        assert!(tsv.starts_with("doc\tpart\tcurrent\tmarginal\n"));
        assert!(tsv.contains("d1\tsmbt3904\t200\t0.950"));
    }
}
