//! Incremental pipeline sessions: the staged, artifact-cached execution
//! surface for iterative KBC (paper §4.3, Appendix C).
//!
//! Fonduer's core usage pattern is *iterative*: users tweak labeling
//! functions or throttlers and re-run, and the system amortizes cost so
//! only supervision and learning repeat. A [`PipelineSession`] makes that
//! explicit. Each stage —
//! [`candidates`](PipelineSession::candidates) →
//! [`featurize`](PipelineSession::featurize) →
//! [`supervise`](PipelineSession::supervise) →
//! [`train`](PipelineSession::train) →
//! [`infer`](PipelineSession::infer) →
//! [`evaluate`](PipelineSession::evaluate) — caches its output artifact
//! under a content hash of its inputs (matcher/throttler fingerprints,
//! [`FeatureConfig`] mask, LF names, [`ModelConfig`], split seed, ...).
//! Mutating an input (e.g. [`set_lfs`](PipelineSession::set_lfs)) dirties
//! only the stages whose keys change, so the LF-iteration loop re-runs
//! supervision + training against cached candidates and feature matrices —
//! the Appendix C workflow.
//!
//! Staleness is purely key-based: setters never eagerly drop artifacts, so
//! setting an input back to its previous value re-hits the cache. Per-stage
//! hits and misses are tracked in [`SessionStats`] and mirrored to
//! `fonduer-observe` counters (`session.cache.hit.<stage>` /
//! `session.cache.miss.<stage>`); stage recomputation runs under the same
//! span names (`candgen`, `featurize`, ...) the one-shot
//! [`run_task`](crate::run_task) always used.
//!
//! Closure-backed matchers, throttlers, and LFs are opaque to content
//! hashing: a matcher closure's *behavior* can change without its
//! fingerprint changing (LFs are keyed by name). When editing an LF body
//! in place, give it a new name — or call
//! [`invalidate`](PipelineSession::invalidate) to force a full recompute.
//!
//! # Incremental corpora
//!
//! Below the stage cache sits a per-document [`shard_cache`]: candidate
//! slices, feature CSR blocks, and LF vote blocks are each cached under
//! `(document content hash, stage config fingerprint)` and stitched into
//! the corpus-level artifacts by a deterministic input-order merge (the
//! same reduction contract `fonduer-par` uses, so assembled artifacts are
//! byte-identical to a cold sequential run). The corpus itself is owned
//! copy-on-write: [`upsert_document`](PipelineSession::upsert_document)
//! and [`remove_document`](PipelineSession::remove_document) mutate it in
//! place, and only the touched document's shards miss on the next run —
//! every unchanged document is a pure cache hit, and the cheap merge +
//! downstream train/infer re-run. [`recomputed_docs`](PipelineSession::recomputed_docs)
//! reports how many documents actually recomputed in the last traversal.

pub mod shard_cache;

use crate::error::Error;
use crate::eval::{eval_tuples, gold_tuples_for_docs, PrF1, Tuple};
use crate::kb::KnowledgeBase;
use crate::pipeline::{is_train_doc, Learner, PipelineConfig, PipelineOutput, Task, Timings};
use fonduer_candidates::{Candidate, CandidateExtractor, CandidateSet};
use fonduer_datamodel::{Corpus, DocId, Document};
use fonduer_features::{
    DocFeatureShard, FeatureConfig, FeatureSet, FeatureShardMerger, Featurizer,
};
use fonduer_learning::{
    prepare, FonduerModel, HogwildLogReg, LogRegModel, ModelConfig, PreparedDataset, ProbClassifier,
};
use fonduer_nlp::{fnv1a, HashedVocab};
use fonduer_observe as observe;
use fonduer_observe::{MentionProvenance, ProvenanceMeta, ProvenanceRecord};
use fonduer_supervision::{
    GenerativeModel, GenerativeOptions, LabelBlock, LabelMatrix, LabelingFunction, LfDiagnostics,
};
use fonduer_synth::GoldKb;
use shard_cache::{ShardCache, ShardCacheSummary, ShardKey};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// The cached pipeline stages, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Candidate generation (phase 2).
    Candidates,
    /// Multimodal featurization + model-input preparation (phase 3a).
    Featurize,
    /// LF application + generative model + LF diagnostics (phase 3b).
    Supervise,
    /// Discriminative training (phase 3c).
    Train,
    /// Inference over all candidates.
    Infer,
    /// Held-out evaluation + KB construction.
    Evaluate,
}

impl StageId {
    /// All stages, in dependency order.
    pub const ALL: [StageId; 6] = [
        StageId::Candidates,
        StageId::Featurize,
        StageId::Supervise,
        StageId::Train,
        StageId::Infer,
        StageId::Evaluate,
    ];

    /// Stage label used in counter names and reports (matches the span
    /// names `run_task` has always emitted).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Candidates => "candgen",
            StageId::Featurize => "featurize",
            StageId::Supervise => "supervise",
            StageId::Train => "train",
            StageId::Infer => "infer",
            StageId::Evaluate => "evaluate",
        }
    }

    fn index(self) -> usize {
        match self {
            StageId::Candidates => 0,
            StageId::Featurize => 1,
            StageId::Supervise => 2,
            StageId::Train => 3,
            StageId::Infer => 4,
            StageId::Evaluate => 5,
        }
    }
}

/// Cache counters for one stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage's artifact was served from cache.
    pub hits: u64,
    /// Times the stage's artifact was (re)computed.
    pub misses: u64,
}

/// Per-stage cache hit/miss counters for one session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    stages: [StageStats; 6],
}

impl SessionStats {
    /// Counters for one stage.
    pub fn stage(&self, id: StageId) -> StageStats {
        self.stages[id.index()]
    }

    /// Total cache hits across all stages.
    pub fn hits(&self) -> u64 {
        self.stages.iter().map(|s| s.hits).sum()
    }

    /// Total artifact computations across all stages.
    pub fn misses(&self) -> u64 {
        self.stages.iter().map(|s| s.misses).sum()
    }

    /// One-line rendering, e.g. `candgen 1h/1m featurize 1h/1m ...`.
    pub fn to_line(&self) -> String {
        StageId::ALL
            .iter()
            .map(|&id| {
                let s = self.stage(id);
                format!("{} {}h/{}m", id.name(), s.hits, s.misses)
            })
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// One cached artifact plus the content-hash key it was computed under.
struct Cached<T> {
    key: u64,
    value: T,
}

/// The supervision stage's artifact: everything phase 3b derives from the
/// candidate set, the LF library, and the document split.
pub struct SupervisionArtifact {
    /// Dense label matrix over training candidates (rows follow `train_idx`).
    pub label_matrix: LabelMatrix,
    /// Indices (into the candidate set) of training-split candidates.
    pub train_idx: Vec<usize>,
    /// Generative-model marginals, aligned with `train_idx`.
    pub train_marginals: Vec<f64>,
    /// Fraction of training candidates with at least one LF vote.
    pub label_coverage: f64,
    /// Per-LF error-analysis table (empirical accuracy when gold is known).
    pub lf_diagnostics: LfDiagnostics,
}

/// The candidate stage's artifact: the merged set plus the per-document
/// row ranges the shard-assembled featurize/supervise stages slice by.
struct CandidateArtifact {
    set: CandidateSet,
    /// `ranges[i]` is the `[lo, hi)` candidate index range of document `i`.
    ranges: Vec<(u32, u32)>,
}

/// Default shard capacity before the first corpus-sized resize.
const DEFAULT_SHARD_CAPACITY: usize = 64;

/// The session's per-document shard caches, one per shardable stage.
struct ShardStore {
    candidates: ShardCache<Vec<Candidate>>,
    features: ShardCache<DocFeatureShard>,
    labels: ShardCache<LabelBlock>,
}

impl ShardStore {
    fn new() -> Self {
        Self {
            candidates: ShardCache::new(DEFAULT_SHARD_CAPACITY),
            features: ShardCache::new(DEFAULT_SHARD_CAPACITY),
            labels: ShardCache::new(DEFAULT_SHARD_CAPACITY),
        }
    }

    /// Track the corpus size: keep roughly two generations of shards per
    /// document so an upsert-then-revert still hits.
    fn resize_for(&mut self, n_docs: usize) {
        let cap = (n_docs * 2).max(DEFAULT_SHARD_CAPACITY);
        self.candidates.set_capacity(cap);
        self.features.set_capacity(cap);
        self.labels.set_capacity(cap);
    }

    fn clear(&mut self) {
        self.candidates.clear();
        self.features.clear();
        self.labels.clear();
    }

    fn summary(&self, recomputed_docs: usize) -> ShardCacheSummary {
        ShardCacheSummary {
            hits: self.candidates.hits() + self.features.hits() + self.labels.hits(),
            misses: self.candidates.misses() + self.features.misses() + self.labels.misses(),
            evicts: self.candidates.evicts() + self.features.evicts() + self.labels.evicts(),
            cached: self.candidates.len() + self.features.len() + self.labels.len(),
            recomputed_docs,
        }
    }
}

struct EvalArtifact {
    kb: KnowledgeBase,
    metrics: PrF1,
}

/// Bracket a recomputed stage with `stage_start` / `stage_finish` events
/// on the live progress ring (the obsd `/events` SSE feed). No-op unless a
/// subscriber switched the feed on.
fn progress_stage<T>(name: &'static str, f: impl FnOnce() -> (T, Duration)) -> (T, Duration) {
    observe::progress("stage_start", name, "", 0);
    let (value, took) = f();
    observe::progress("stage_finish", name, "", took.as_micros() as u64);
    (value, took)
}

fn hash_parts(tag: &str, parts: &[u64]) -> u64 {
    let mut key = tag.as_bytes().to_vec();
    for p in parts {
        key.push(0x1f);
        key.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a(&key)
}

/// A stateful, incrementally re-runnable pipeline over one corpus.
///
/// The session borrows the corpus, the gold KB, and the task inputs
/// (extractor + LF library) for its lifetime; the iterative loop swaps the
/// borrowed inputs with [`set_lfs`](Self::set_lfs) /
/// [`set_extractor`](Self::set_extractor) and re-runs
/// [`output`](Self::output). See the module docs for the caching model.
///
/// ```no_run
/// # use fonduer_core::{PipelineSession, PipelineConfig, Task};
/// # fn demo(corpus: &fonduer_datamodel::Corpus, gold: &fonduer_synth::GoldKb,
/// #         task: &Task, better_lfs: &[fonduer_supervision::LabelingFunction])
/// #         -> Result<(), fonduer_core::Error> {
/// let mut session = PipelineSession::new(corpus, gold, task, PipelineConfig::default())?;
/// let first = session.output()?; // cold: runs all six stages
/// session.set_lfs(better_lfs); // dirty supervise + train + infer + evaluate
/// let second = session.output()?; // warm: candgen + featurize served from cache
/// # Ok(()) }
/// ```
pub struct PipelineSession<'a> {
    /// Copy-on-write corpus: borrowed until the first
    /// [`upsert_document`](Self::upsert_document) /
    /// [`remove_document`](Self::remove_document), owned after.
    corpus: Cow<'a, Corpus>,
    /// `doc_hashes[i]` is the content hash of document `i` — the shard-key
    /// half that tracks corpus mutations (kept in sync with `corpus`).
    doc_hashes: Vec<u64>,
    gold: &'a GoldKb,
    extractor: &'a CandidateExtractor,
    lfs: &'a [LabelingFunction],
    cfg: PipelineConfig,
    /// Lenient sessions (the `run_task` compatibility path) skip the
    /// strict empty-candidate / empty-training-set checks and reproduce
    /// the historical permissive behavior bit for bit.
    strict: bool,
    candidates: Option<Cached<CandidateArtifact>>,
    split: Option<Cached<(BTreeSet<String>, BTreeSet<String>)>>,
    features: Option<Cached<FeatureSet>>,
    /// Model inputs derived from the feature matrix (token windows +
    /// feature rows per candidate). Built lazily by the train stage — an
    /// upsert's featurize→supervise walk never pays for it.
    dataset: Option<Cached<PreparedDataset>>,
    supervision: Option<Cached<SupervisionArtifact>>,
    model: Option<Cached<Box<dyn ProbClassifier>>>,
    marginals: Option<Cached<Vec<f32>>>,
    evaluation: Option<Cached<EvalArtifact>>,
    /// Per-document shard caches (the incremental-recomputation layer).
    shards: ShardStore,
    /// Names of documents with at least one shard recomputed during the
    /// current traversal (cleared at each public stage entry).
    recomputed: BTreeSet<String>,
    timings: Timings,
    stats: SessionStats,
    /// Stages already counted during the current top-level traversal: one
    /// `output()` consults the candidate artifact from both featurize and
    /// supervise, but that is one hit, not two.
    noted: [bool; 6],
}

impl<'a> PipelineSession<'a> {
    /// Open a session for `task` over `corpus`, validating `cfg`.
    pub fn new(
        corpus: &'a Corpus,
        gold: &'a GoldKb,
        task: &'a Task,
        cfg: PipelineConfig,
    ) -> Result<Self, Error> {
        Self::from_parts(corpus, gold, &task.extractor, &task.lfs, cfg)
    }

    /// Open a session from an extractor and LF slice directly (no [`Task`]
    /// wrapper), validating `cfg`.
    pub fn from_parts(
        corpus: &'a Corpus,
        gold: &'a GoldKb,
        extractor: &'a CandidateExtractor,
        lfs: &'a [LabelingFunction],
        cfg: PipelineConfig,
    ) -> Result<Self, Error> {
        cfg.validate()?;
        Ok(Self::build(corpus, gold, extractor, lfs, cfg, true))
    }

    /// The `run_task` compatibility constructor: no config validation, no
    /// strict degenerate-input errors.
    pub(crate) fn compat(
        corpus: &'a Corpus,
        gold: &'a GoldKb,
        extractor: &'a CandidateExtractor,
        lfs: &'a [LabelingFunction],
        cfg: PipelineConfig,
    ) -> Self {
        Self::build(corpus, gold, extractor, lfs, cfg, false)
    }

    fn build(
        corpus: &'a Corpus,
        gold: &'a GoldKb,
        extractor: &'a CandidateExtractor,
        lfs: &'a [LabelingFunction],
        cfg: PipelineConfig,
        strict: bool,
    ) -> Self {
        // Ambient observability: FONDUER_OBSD=<addr> starts the process-
        // global debug server, making every session (and run_task caller)
        // scrapeable with zero code changes. No-op when unset.
        fonduer_obsd::activate_from_env();
        let doc_hashes = corpus.iter().map(|(_, d)| d.content_hash()).collect();
        let mut shards = ShardStore::new();
        shards.resize_for(corpus.len());
        Self {
            corpus: Cow::Borrowed(corpus),
            doc_hashes,
            gold,
            extractor,
            lfs,
            cfg,
            strict,
            candidates: None,
            split: None,
            features: None,
            dataset: None,
            supervision: None,
            model: None,
            marginals: None,
            evaluation: None,
            shards,
            recomputed: BTreeSet::new(),
            timings: Timings::default(),
            stats: SessionStats::default(),
            noted: [false; 6],
        }
    }

    // ---------------------------------------------------------------- inputs

    /// Replace the LF library. Dirties supervise → train → infer →
    /// evaluate; candidate and feature artifacts stay valid.
    pub fn set_lfs(&mut self, lfs: &'a [LabelingFunction]) {
        self.lfs = lfs;
    }

    /// Replace the candidate extractor. Dirties every stage (unless the new
    /// extractor's fingerprint matches the old one).
    pub fn set_extractor(&mut self, extractor: &'a CandidateExtractor) {
        self.extractor = extractor;
    }

    /// Replace the whole configuration (validated). Stages whose key inputs
    /// are unchanged keep their cached artifacts.
    pub fn set_config(&mut self, cfg: PipelineConfig) -> Result<(), Error> {
        cfg.validate()?;
        self.cfg = cfg;
        Ok(())
    }

    /// Change the classification threshold. Dirties only evaluate.
    pub fn set_threshold(&mut self, threshold: f32) -> Result<(), Error> {
        let mut cfg = self.cfg.clone();
        cfg.threshold = threshold;
        self.set_config(cfg)
    }

    /// Change the feature-modality switchboard. Dirties featurize → train →
    /// infer → evaluate; candidates and supervision stay valid.
    pub fn set_feature_config(&mut self, features: FeatureConfig) {
        self.cfg.features = features;
    }

    /// Change the neural-model hyperparameters. Dirties train → infer →
    /// evaluate.
    pub fn set_model_config(&mut self, model: ModelConfig) {
        self.cfg.model = model;
    }

    /// Change the discriminative learner. Dirties train → infer → evaluate.
    pub fn set_learner(&mut self, learner: Learner) {
        self.cfg.learner = learner;
    }

    /// Change the generative-model options. Dirties supervise → train →
    /// infer → evaluate.
    pub fn set_gen_opts(&mut self, gen_opts: GenerativeOptions) {
        self.cfg.gen_opts = gen_opts;
    }

    /// Change the train/test document split. Dirties supervise → train →
    /// infer → evaluate.
    pub fn set_split(&mut self, train_frac: f64, seed: u64) -> Result<(), Error> {
        let mut cfg = self.cfg.clone();
        cfg.train_frac = train_frac;
        cfg.seed = seed;
        self.set_config(cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    // ------------------------------------------------------- corpus mutation

    /// Read-only view of the session's current corpus (including any
    /// upserts/removals applied through the session).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Insert or replace one document, keyed by its name. Returns the
    /// document's position. The next run recomputes only this document's
    /// candidate/feature/label shards plus the cheap merge and downstream
    /// train/infer — every other document is a pure shard-cache hit. An
    /// upsert whose content is byte-identical to the existing document is a
    /// no-op for caching (the content hash is unchanged).
    ///
    /// Errors with [`Error::DuplicateDocId`] when more than one existing
    /// document already carries the name (there is no unique document to
    /// replace).
    pub fn upsert_document(&mut self, doc: Document) -> Result<DocId, Error> {
        let count = self.corpus.count_named(&doc.name);
        if count > 1 {
            return Err(Error::DuplicateDocId {
                name: doc.name.clone(),
                count,
            });
        }
        let hash = doc.content_hash();
        match self.corpus.index_of(&doc.name) {
            Some(id) => {
                self.corpus.to_mut().replace(id, doc);
                self.doc_hashes[id.index()] = hash;
                Ok(id)
            }
            None => {
                let id = self.corpus.to_mut().add(doc);
                self.doc_hashes.push(hash);
                Ok(id)
            }
        }
    }

    /// Remove the document at `id`, returning it. Later documents shift
    /// down one position — shards are content-keyed, so their cached work
    /// survives the shift and the next run recomputes nothing but the
    /// merge + downstream stages.
    ///
    /// Errors with [`Error::DocNotFound`] when `id` is past the end of the
    /// corpus.
    pub fn remove_document(&mut self, id: DocId) -> Result<Document, Error> {
        if id.index() >= self.corpus.len() {
            return Err(Error::DocNotFound {
                doc: id,
                n_docs: self.corpus.len(),
            });
        }
        self.doc_hashes.remove(id.index());
        Ok(self.corpus.to_mut().remove(id))
    }

    /// Number of documents whose shards were recomputed during the most
    /// recent traversal: the whole corpus on a cold run, exactly 1 after a
    /// warm single-document upsert, 0 when every stage was served from the
    /// monolithic stage cache.
    pub fn recomputed_docs(&self) -> usize {
        self.recomputed.len()
    }

    /// Aggregated shard-cache counters (lifetime hits/misses/evictions,
    /// resident shards) plus the last traversal's recomputed-document
    /// count.
    pub fn shard_stats(&self) -> ShardCacheSummary {
        self.shards.summary(self.recomputed.len())
    }

    /// Drop every cached artifact — including all per-document shards —
    /// forcing the next run to recompute all stages. The escape hatch for
    /// in-place edits content hashing cannot see (a closure body behind an
    /// unchanged matcher kind or LF name).
    pub fn invalidate(&mut self) {
        self.candidates = None;
        self.split = None;
        self.features = None;
        self.dataset = None;
        self.supervision = None;
        self.model = None;
        self.marginals = None;
        self.evaluation = None;
        self.shards.clear();
    }

    /// Per-stage cache hit/miss counters accumulated over the session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Zero the cache counters (artifacts are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }

    /// Stage timings of the most recent traversal. Stages served from cache
    /// report [`Duration::ZERO`]; recomputed stages report measured wall
    /// clock — so a warm re-run's total is the true incremental cost.
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// A queryable [`RunReport`](crate::report::RunReport) joining the
    /// last traversal's stage timings, the session's cache counters, the
    /// pool telemetry and span summaries from the `fonduer-observe`
    /// registry, and the per-document stage timings table. Call after
    /// `output()`; the snapshot reflects the process-global registry, so
    /// span totals accumulate across traversals while `last_us` is this
    /// session's most recent walk only.
    pub fn run_report(&self) -> crate::report::RunReport {
        crate::report::RunReport::collect(
            &self.timings,
            self.stats,
            self.shard_stats(),
            self.cfg.n_threads,
        )
    }

    /// Start (or reuse) the process-global `fonduer-obsd` debug server on
    /// `addr` (`"127.0.0.1:0"` picks an ephemeral port) and publish the
    /// session's current report state to it. Returns the bound address.
    /// Subsequent [`output`](Self::output) calls keep `/report`,
    /// `/report.json`, and `/lfs` fresh automatically.
    pub fn serve_obsd(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let bound = fonduer_obsd::ensure_global(addr)?;
        self.publish_obsd();
        Ok(bound)
    }

    /// Push the current `RunReport` renderings and LF diagnostics into the
    /// obsd publish slots. No-op when no server is active.
    fn publish_obsd(&self) {
        if !fonduer_obsd::is_active() {
            return;
        }
        let report = self.run_report();
        fonduer_obsd::publish_report(report.render_text(), report.render_jsonl());
        if let Some(sup) = self.supervision.as_ref() {
            fonduer_obsd::publish_lf_diagnostics(crate::report::lf_diagnostics_json(
                &sup.value.lf_diagnostics,
            ));
        }
    }

    // ------------------------------------------------------------ cache keys

    /// Record one hit/miss for `stage`, once per traversal (a single
    /// `output()` walk can consult an upstream artifact more than once —
    /// e.g. candidates feed both featurization and supervision). Returns
    /// whether this was the first consult of the traversal, so callers can
    /// also gate per-traversal side effects (like zeroing a stage timing)
    /// on it.
    /// Reset per-traversal bookkeeping (stage hit/miss notes and the
    /// recomputed-document set) at each public stage entry.
    fn begin_traversal(&mut self) {
        self.noted = [false; 6];
        self.recomputed.clear();
    }

    fn note(&mut self, stage: StageId, hit: bool) -> bool {
        if self.noted[stage.index()] {
            return false;
        }
        self.noted[stage.index()] = true;
        let s = &mut self.stats.stages[stage.index()];
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
        let verdict = if hit { "hit" } else { "miss" };
        observe::counter(&format!("session.cache.{verdict}.{}", stage.name()), 1);
        true
    }

    /// Content hash of the whole corpus, folded into every stage key so
    /// upserts/removals dirty the monolithic artifacts (shards below then
    /// make the recompute cheap).
    fn corpus_key(&self) -> u64 {
        hash_parts("corpus", &self.doc_hashes)
    }

    fn candidates_key(&self) -> u64 {
        hash_parts(
            "candidates",
            &[self.extractor.fingerprint(), self.corpus_key()],
        )
    }

    fn split_key(&self) -> u64 {
        hash_parts(
            "split",
            &[
                self.cfg.train_frac.to_bits(),
                self.cfg.seed,
                self.corpus_key(),
            ],
        )
    }

    fn features_key(&self) -> u64 {
        hash_parts(
            "features",
            &[
                self.candidates_key(),
                self.cfg.features.fingerprint(),
                self.cfg.vocab_size as u64,
                self.cfg.window as u64,
            ],
        )
    }

    fn supervise_key(&self) -> u64 {
        let mut lf_names = Vec::new();
        for lf in self.lfs {
            lf_names.push(0x1f);
            lf_names.extend_from_slice(lf.name.as_bytes());
        }
        hash_parts(
            "supervise",
            &[
                self.candidates_key(),
                self.split_key(),
                fnv1a(&lf_names),
                fnv1a(format!("{:?}", self.cfg.gen_opts).as_bytes()),
            ],
        )
    }

    fn train_key(&self) -> u64 {
        // Hogwild's racy updates make its weights legitimately depend on
        // the worker count; every other learner is thread-count-invariant,
        // so folding n_threads in for them would only cause spurious cache
        // misses (determinism is the contract).
        let thread_salt = match self.cfg.learner {
            Learner::HogwildLogReg => self.cfg.n_threads as u64,
            _ => 0,
        };
        hash_parts(
            "train",
            &[
                self.features_key(),
                self.supervise_key(),
                fnv1a(format!("{:?}", self.cfg.learner).as_bytes()),
                fnv1a(format!("{:?}", self.cfg.model).as_bytes()),
                self.cfg.seed,
                thread_salt,
            ],
        )
    }

    fn evaluate_key(&self) -> u64 {
        hash_parts(
            "evaluate",
            &[self.train_key(), self.cfg.threshold.to_bits() as u64],
        )
    }

    // ---------------------------------------------------------------- stages

    /// Phase 2: candidate generation. Cached on the extractor fingerprint.
    pub fn candidates(&mut self) -> Result<&CandidateSet, Error> {
        self.begin_traversal();
        self.ensure_candidates()?;
        Ok(&self.candidates.as_ref().unwrap().value.set)
    }

    fn ensure_candidates(&mut self) -> Result<(), Error> {
        let key = self.candidates_key();
        if self.candidates.as_ref().is_some_and(|c| c.key == key) {
            if self.note(StageId::Candidates, true) {
                self.timings.candgen = Duration::ZERO;
            }
            return Ok(());
        }
        self.note(StageId::Candidates, false);
        let cfg_fp = hash_parts("shard.cand", &[self.extractor.fingerprint()]);
        let n = self.corpus.len();
        self.shards.resize_for(n);
        let corpus: &Corpus = &self.corpus;
        let extractor = self.extractor;
        let n_threads = self.cfg.n_threads;
        let doc_hashes = &self.doc_hashes;
        let cache = &mut self.shards.candidates;
        let recomputed = &mut self.recomputed;
        let (value, took) = progress_stage("candgen", || {
            observe::timed("candgen", || {
                // Per-document shard plan: content-addressed lookups first,
                // then one parallel pass over only the misses. The
                // `extract_corpus` span covers only this per-document work
                // (what the doc-timings table measures); the merge below is
                // corpus-global reduction, outside it.
                let plan = {
                    let _span = observe::span("extract_corpus");
                    let time_docs = observe::doc_timings_enabled();
                    let mut plan: Vec<Option<Arc<Vec<Candidate>>>> = (0..n)
                        .map(|i| {
                            cache.get(ShardKey {
                                doc_hash: doc_hashes[i],
                                config: cfg_fp,
                            })
                        })
                        .collect();
                    let missing: Vec<DocId> = plan
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_none())
                        .map(|(i, _)| DocId::from_usize(i))
                        .collect();
                    if !missing.is_empty() {
                        let computed = extractor.extract_docs(corpus, &missing, n_threads);
                        for (&id, (cands, ns)) in missing.iter().zip(computed) {
                            let name = &corpus.doc(id).name;
                            if time_docs {
                                observe::doc_stage_ns(name, "candgen", ns);
                            }
                            recomputed.insert(name.clone());
                            let shard = Arc::new(cands);
                            cache.insert(
                                ShardKey {
                                    doc_hash: doc_hashes[id.index()],
                                    config: cfg_fp,
                                },
                                Arc::clone(&shard),
                            );
                            plan[id.index()] = Some(shard);
                        }
                    }
                    plan
                };
                // Deterministic input-order merge (the fonduer-par reduction
                // contract), re-pointing each candidate at its current
                // corpus position so shards survive the DocId shifts a
                // removal causes.
                let mut candidates = Vec::new();
                let mut ranges = Vec::with_capacity(n);
                for (i, shard) in plan.iter().enumerate() {
                    let shard = shard.as_ref().expect("every shard resolved above");
                    let lo = candidates.len() as u32;
                    let id = DocId::from_usize(i);
                    candidates.extend(shard.iter().map(|c| Candidate::new(id, c.mentions.clone())));
                    ranges.push((lo, candidates.len() as u32));
                }
                CandidateArtifact {
                    set: CandidateSet {
                        schema: extractor.schema.clone(),
                        candidates,
                    },
                    ranges,
                }
            })
        });
        self.timings.candgen = took;
        self.candidates = Some(Cached { key, value });
        Ok(())
    }

    /// The train/test document-name split (cheap; cached on
    /// `(train_frac, seed)`).
    fn split(&mut self) -> &(BTreeSet<String>, BTreeSet<String>) {
        let key = self.split_key();
        if self.split.as_ref().is_none_or(|c| c.key != key) {
            let mut train_docs = BTreeSet::new();
            let mut test_docs = BTreeSet::new();
            for (_, doc) in self.corpus.iter() {
                if is_train_doc(&doc.name, self.cfg.train_frac, self.cfg.seed) {
                    train_docs.insert(doc.name.clone());
                } else {
                    test_docs.insert(doc.name.clone());
                }
            }
            self.split = Some(Cached {
                key,
                value: (train_docs, test_docs),
            });
        }
        &self.split.as_ref().unwrap().value
    }

    /// Phase 3a: multimodal featurization + model-input preparation.
    /// Cached on the candidate key plus the [`FeatureConfig`] mask, vocab
    /// size, and sentence window.
    pub fn featurize(&mut self) -> Result<&FeatureSet, Error> {
        self.begin_traversal();
        self.ensure_featurize()?;
        Ok(&self.features.as_ref().unwrap().value)
    }

    fn ensure_featurize(&mut self) -> Result<(), Error> {
        self.ensure_candidates()?;
        let key = self.features_key();
        if self.features.as_ref().is_some_and(|c| c.key == key) {
            if self.note(StageId::Featurize, true) {
                self.timings.featurize = Duration::ZERO;
            }
            return Ok(());
        }
        self.note(StageId::Featurize, false);
        let cfg_fp = hash_parts(
            "shard.feat",
            &[
                self.extractor.fingerprint(),
                self.cfg.features.fingerprint(),
            ],
        );
        let n = self.corpus.len();
        self.shards.resize_for(n);
        let corpus: &Corpus = &self.corpus;
        let art = &self.candidates.as_ref().unwrap().value;
        let featurizer = Featurizer::new(self.cfg.features);
        let hashing_bits = self.cfg.features.hashing_bits;
        let n_threads = self.cfg.n_threads;
        let doc_hashes = &self.doc_hashes;
        let cache = &mut self.shards.features;
        let recomputed = &mut self.recomputed;
        let (feats, took) = progress_stage("featurize", || {
            observe::timed("featurize", || {
                // The `featurize_corpus` span covers only the per-document
                // work (what the doc-timings table measures); the merge
                // below is corpus-global reduction, outside it.
                let plan = {
                    let _span = observe::span("featurize_corpus");
                    let time_docs = observe::doc_timings_enabled();
                    let mut plan: Vec<Option<Arc<DocFeatureShard>>> = (0..n)
                        .map(|i| {
                            cache.get(ShardKey {
                                doc_hash: doc_hashes[i],
                                config: cfg_fp,
                            })
                        })
                        .collect();
                    let missing: Vec<usize> = plan
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    if !missing.is_empty() {
                        let work = |&i: &usize| {
                            let t0 = time_docs.then(std::time::Instant::now);
                            let (lo, hi) = art.ranges[i];
                            let shard = featurizer.featurize_doc(
                                corpus.doc(DocId::from_usize(i)),
                                &art.set.candidates[lo as usize..hi as usize],
                            );
                            (shard, t0.map_or(0, |t| t.elapsed().as_nanos() as u64))
                        };
                        let pool = fonduer_par::Pool::new(n_threads);
                        let computed: Vec<(DocFeatureShard, u64)> =
                            if pool.n_threads() == 1 || missing.len() < 2 {
                                missing.iter().map(work).collect()
                            } else {
                                pool.par_map(&missing, work)
                            };
                        for (&i, (shard, ns)) in missing.iter().zip(computed) {
                            let name = &corpus.doc(DocId::from_usize(i)).name;
                            if time_docs {
                                observe::doc_stage_ns(name, "featurize", ns);
                            }
                            recomputed.insert(name.clone());
                            let shard = Arc::new(shard);
                            cache.insert(
                                ShardKey {
                                    doc_hash: doc_hashes[i],
                                    config: cfg_fp,
                                },
                                Arc::clone(&shard),
                            );
                            plan[i] = Some(shard);
                        }
                    }
                    plan
                };
                // Input-order merge: shard-local feature ids remap through
                // a shared vocab in first-occurrence order, reproducing the
                // sequential featurizer's intern order byte for byte.
                let mut merger = FeatureShardMerger::new(hashing_bits);
                for shard in &plan {
                    merger.push(shard.as_ref().expect("every shard resolved above"));
                }
                merger.finish()
            })
        });
        self.timings.featurize = took;
        self.features = Some(Cached { key, value: feats });
        Ok(())
    }

    /// Model-input preparation (token windows + feature rows per
    /// candidate), keyed with the feature artifact. Only the train/infer
    /// path needs it, so featurize-stage consumers (and warm upsert walks)
    /// never pay for it.
    fn ensure_dataset(&mut self) -> Result<(), Error> {
        self.ensure_featurize()?;
        let key = self.features_key();
        if self.dataset.as_ref().is_some_and(|c| c.key == key) {
            return Ok(());
        }
        let vocab = HashedVocab::new(self.cfg.vocab_size);
        let dataset = prepare(
            &self.corpus,
            &self.candidates.as_ref().unwrap().value.set,
            &self.features.as_ref().unwrap().value,
            &vocab,
            self.cfg.window,
        );
        self.dataset = Some(Cached {
            key,
            value: dataset,
        });
        Ok(())
    }

    /// Phase 3b: LF application, generative model, and LF diagnostics over
    /// the training split. Cached on the candidate and split keys plus the
    /// LF names and generative options.
    pub fn supervise(&mut self) -> Result<&SupervisionArtifact, Error> {
        self.begin_traversal();
        self.ensure_supervise()?;
        Ok(&self.supervision.as_ref().unwrap().value)
    }

    fn ensure_supervise(&mut self) -> Result<(), Error> {
        self.ensure_candidates()?;
        self.split();
        let key = self.supervise_key();
        if self.supervision.as_ref().is_some_and(|c| c.key == key) {
            if self.note(StageId::Supervise, true) {
                self.timings.supervise = Duration::ZERO;
            }
            return Ok(());
        }
        self.note(StageId::Supervise, false);
        let cfg_fp = {
            let mut lf_names = Vec::new();
            for lf in self.lfs {
                lf_names.push(0x1f);
                lf_names.extend_from_slice(lf.name.as_bytes());
            }
            // Keyed without split params: changing the train/test split
            // reuses every label shard already computed for a document.
            hash_parts(
                "shard.label",
                &[self.extractor.fingerprint(), fnv1a(&lf_names)],
            )
        };
        let n = self.corpus.len();
        self.shards.resize_for(n);
        let corpus: &Corpus = &self.corpus;
        let art = &self.candidates.as_ref().unwrap().value;
        let (train_docs, _) = &self.split.as_ref().unwrap().value;
        let lfs = self.lfs;
        let gen_opts = &self.cfg.gen_opts;
        let n_threads = self.cfg.n_threads;
        let doc_hashes = &self.doc_hashes;
        let cache = &mut self.shards.labels;
        let recomputed = &mut self.recomputed;
        let ((label_matrix, train_idx, train_marginals, label_coverage), took) =
            progress_stage("supervise", || {
                observe::timed("supervise", || {
                    let lf_refs: Vec<&LabelingFunction> = lfs.iter().collect();
                    // Corpus positions of training-split documents, in input
                    // order; label shards exist only for these.
                    let train_positions: Vec<usize> = (0..n)
                        .filter(|&i| train_docs.contains(&corpus.doc(DocId::from_usize(i)).name))
                        .collect();
                    let blocks: Vec<Arc<LabelBlock>> = {
                        let _span = observe::span("lf_apply");
                        let time_docs = observe::doc_timings_enabled();
                        let mut plan: Vec<Option<Arc<LabelBlock>>> = train_positions
                            .iter()
                            .map(|&i| {
                                cache.get(ShardKey {
                                    doc_hash: doc_hashes[i],
                                    config: cfg_fp,
                                })
                            })
                            .collect();
                        // Missing slots, as indices into `train_positions`.
                        let missing: Vec<usize> = plan
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.is_none())
                            .map(|(k, _)| k)
                            .collect();
                        if !missing.is_empty() {
                            let work = |&k: &usize| {
                                let t0 = time_docs.then(std::time::Instant::now);
                                let i = train_positions[k];
                                let (lo, hi) = art.ranges[i];
                                let block = LabelBlock::compute(
                                    &lf_refs,
                                    corpus.doc(DocId::from_usize(i)),
                                    &art.set.candidates[lo as usize..hi as usize],
                                );
                                (block, t0.map_or(0, |t| t.elapsed().as_nanos() as u64))
                            };
                            let pool = fonduer_par::Pool::new(n_threads);
                            let computed: Vec<(LabelBlock, u64)> =
                                if pool.n_threads() == 1 || missing.len() < 2 {
                                    missing.iter().map(work).collect()
                                } else {
                                    pool.par_map(&missing, work)
                                };
                            for (&k, (block, ns)) in missing.iter().zip(computed) {
                                let i = train_positions[k];
                                let name = &corpus.doc(DocId::from_usize(i)).name;
                                if time_docs {
                                    observe::doc_stage_ns(name, "lf_apply", ns);
                                }
                                recomputed.insert(name.clone());
                                let block = Arc::new(block);
                                cache.insert(
                                    ShardKey {
                                        doc_hash: doc_hashes[i],
                                        config: cfg_fp,
                                    },
                                    Arc::clone(&block),
                                );
                                plan[k] = Some(block);
                            }
                        }
                        plan.into_iter()
                            .map(|b| b.expect("every block resolved above"))
                            .collect()
                    };
                    let label_matrix =
                        LabelMatrix::from_blocks(lfs.len(), blocks.iter().map(|b| b.as_ref()));
                    // Candidate indices of the training split, grouped by
                    // document in input order — identical to filtering the
                    // merged candidate list by train-doc membership.
                    let train_idx: Vec<usize> = train_positions
                        .iter()
                        .flat_map(|&i| (art.ranges[i].0 as usize)..(art.ranges[i].1 as usize))
                        .collect();
                    let gen = GenerativeModel::fit(&label_matrix, gen_opts);
                    let train_marginals = gen.predict(&label_matrix);
                    let label_coverage = label_matrix.total_coverage();
                    (label_matrix, train_idx, train_marginals, label_coverage)
                })
            });
        observe::gauge_set("supervision.label_coverage", label_coverage);
        let candidates = &self.candidates.as_ref().unwrap().value.set;
        // LF error-analysis table (empirical accuracy when gold is known).
        let lf_names: Vec<String> = lfs.iter().map(|lf| lf.name.clone()).collect();
        let train_gold: Vec<bool> = train_idx
            .iter()
            .map(|&i| {
                let c = &candidates.candidates[i];
                let d = corpus.doc(c.doc);
                self.gold
                    .contains(&candidates.schema.name, &d.name, &c.arg_texts(d))
            })
            .collect();
        let lf_diagnostics = LfDiagnostics::compute(
            &lf_names,
            &label_matrix,
            (!self.gold.is_empty()).then_some(train_gold.as_slice()),
        );
        lf_diagnostics.publish_gauges();
        self.timings.supervise = took;
        self.supervision = Some(Cached {
            key,
            value: SupervisionArtifact {
                label_matrix,
                train_idx,
                train_marginals,
                label_coverage,
                lf_diagnostics,
            },
        });
        Ok(())
    }

    /// Phase 3c: discriminative training. Cached on the feature and
    /// supervision keys plus the learner selection and model config.
    ///
    /// Strict sessions (the default) reject degenerate training inputs with
    /// [`Error::NoCandidates`] / [`Error::EmptyTrainingSet`] instead of
    /// silently fitting nothing.
    pub fn train(&mut self) -> Result<(), Error> {
        self.begin_traversal();
        self.ensure_train()
    }

    fn ensure_train(&mut self) -> Result<(), Error> {
        self.ensure_dataset()?;
        self.ensure_supervise()?;
        let key = self.train_key();
        if self.model.as_ref().is_some_and(|c| c.key == key) {
            if self.note(StageId::Train, true) {
                self.timings.train = Duration::ZERO;
            }
            return Ok(());
        }
        self.note(StageId::Train, false);
        let candidates = &self.candidates.as_ref().unwrap().value.set;
        let dataset = &self.dataset.as_ref().unwrap().value;
        let sup = &self.supervision.as_ref().unwrap().value;
        // Keep only candidates some LF labeled (Snorkel's behavior).
        let mut train_inputs = Vec::new();
        let mut train_targets = Vec::new();
        for (k, &i) in sup.train_idx.iter().enumerate() {
            if sup.label_matrix.row(k).iter().any(|&v| v != 0) {
                train_inputs.push(dataset.inputs[i].clone());
                train_targets.push(sup.train_marginals[k] as f32);
            }
        }
        if self.strict {
            if candidates.is_empty() {
                return Err(Error::NoCandidates {
                    relation: candidates.schema.name.clone(),
                });
            }
            if train_inputs.is_empty() {
                return Err(Error::EmptyTrainingSet {
                    relation: candidates.schema.name.clone(),
                    n_candidates: candidates.len(),
                    n_train: sup.train_idx.len(),
                });
            }
        }
        let cfg = &self.cfg;
        let (model, took) = progress_stage("train", || {
            observe::timed("train", || {
                let mut model: Box<dyn ProbClassifier> = match cfg.learner {
                    Learner::MultimodalLstm => Box::new(FonduerModel::new(
                        cfg.model.clone(),
                        dataset.vocab_size,
                        dataset.n_features,
                        dataset.arity,
                    )),
                    Learner::LogReg => Box::new(LogRegModel::new(dataset.n_features, cfg.seed)),
                    Learner::HogwildLogReg => Box::new(HogwildLogReg::new(
                        dataset.n_features,
                        cfg.seed,
                        cfg.n_threads,
                    )),
                };
                model.fit(&train_inputs, &train_targets);
                model
            })
        });
        self.timings.train = took;
        self.model = Some(Cached { key, value: model });
        Ok(())
    }

    /// Inference: marginal P(true) for every candidate (aligned with
    /// [`candidates`](Self::candidates)). Cached with the trained model.
    pub fn infer(&mut self) -> Result<&[f32], Error> {
        self.begin_traversal();
        self.ensure_infer()?;
        Ok(&self.marginals.as_ref().unwrap().value)
    }

    fn ensure_infer(&mut self) -> Result<(), Error> {
        self.ensure_train()?;
        let key = self.train_key();
        if self.marginals.as_ref().is_some_and(|c| c.key == key) {
            if self.note(StageId::Infer, true) {
                self.timings.infer = Duration::ZERO;
            }
            return Ok(());
        }
        self.note(StageId::Infer, false);
        let model = &self.model.as_ref().unwrap().value;
        let dataset = &self.dataset.as_ref().unwrap().value;
        let (marginals, took) = progress_stage("infer", || {
            observe::timed("infer", || model.predict(&dataset.inputs))
        });
        observe::counter("infer.candidates", marginals.len() as u64);
        self.timings.infer = took;
        self.marginals = Some(Cached {
            key,
            value: marginals,
        });
        Ok(())
    }

    /// Held-out evaluation against gold plus KB construction. Cached on the
    /// inference key and the classification threshold.
    pub fn evaluate(&mut self) -> Result<&PrF1, Error> {
        self.begin_traversal();
        self.ensure_evaluate()?;
        Ok(&self.evaluation.as_ref().unwrap().value.metrics)
    }

    fn ensure_evaluate(&mut self) -> Result<(), Error> {
        self.ensure_infer()?;
        let key = self.evaluate_key();
        if self.evaluation.as_ref().is_some_and(|c| c.key == key) {
            self.note(StageId::Evaluate, true);
            return Ok(());
        }
        self.note(StageId::Evaluate, false);
        let candidates = &self.candidates.as_ref().unwrap().value.set;
        let marginals = &self.marginals.as_ref().unwrap().value;
        let (_, test_docs) = &self.split.as_ref().unwrap().value;
        let relation = candidates.schema.name.clone();
        let arg_names = candidates.schema.arg_names.clone();
        let tuples_with_p: Vec<(Tuple, f32)> = candidates
            .candidates
            .iter()
            .zip(marginals.iter())
            .map(|(c, &p)| {
                let doc = self.corpus.doc(c.doc);
                ((doc.name.clone(), c.arg_texts(doc)), p)
            })
            .collect();
        // Held-out evaluation (before the KB takes ownership of the tuples).
        let pred_test: BTreeSet<Tuple> = tuples_with_p
            .iter()
            .filter(|((d, _), p)| *p >= self.cfg.threshold && test_docs.contains(d))
            .map(|(t, _)| t.clone())
            .collect();
        let gold_test = gold_tuples_for_docs(self.gold, &relation, test_docs);
        let metrics = eval_tuples(&pred_test, &gold_test);
        let kb =
            KnowledgeBase::from_marginals(&relation, &arg_names, tuples_with_p, self.cfg.threshold);
        self.evaluation = Some(Cached {
            key,
            value: EvalArtifact { kb, metrics },
        });
        Ok(())
    }

    /// Run every stage (cached stages are skipped) and assemble a
    /// [`PipelineOutput`] — byte-identical to what the one-shot
    /// [`run_task`](crate::run_task) produces for the same inputs.
    pub fn output(&mut self) -> Result<PipelineOutput, Error> {
        self.begin_traversal();
        self.ensure_evaluate()?;
        if observe::provenance::recording_enabled() {
            self.record_provenance();
        }
        self.publish_obsd();
        let candidates = self.candidates.as_ref().unwrap().value.set.clone();
        let marginals = self.marginals.as_ref().unwrap().value.clone();
        let (train_docs, test_docs) = self.split.as_ref().unwrap().value.clone();
        let sup = &self.supervision.as_ref().unwrap().value;
        let eval = &self.evaluation.as_ref().unwrap().value;
        Ok(PipelineOutput {
            candidates,
            marginals,
            kb: eval.kb.clone(),
            train_docs,
            test_docs,
            metrics: eval.metrics,
            label_coverage: sup.label_coverage,
            lf_diagnostics: sup.lf_diagnostics.clone(),
            timings: self.timings,
        })
    }

    /// Flight recorder: one provenance record per kept candidate, tracing
    /// it from mention spans through throttling, LF votes, and feature mix
    /// to its marginal (same records `run_task` has always emitted).
    fn record_provenance(&self) {
        let _span = observe::span("provenance");
        let candidates = &self.candidates.as_ref().unwrap().value.set;
        let marginals = &self.marginals.as_ref().unwrap().value;
        let sup = &self.supervision.as_ref().unwrap().value;
        let feats = &self.features.as_ref().unwrap().value;
        observe::provenance::set_meta(ProvenanceMeta {
            relation: candidates.schema.name.clone(),
            arg_names: candidates.schema.arg_names.clone(),
            matchers: self.extractor.matcher_names(),
            scope: self.extractor.scope.label().to_string(),
            throttlers: self.extractor.throttler_names(),
            lf_names: self.lfs.iter().map(|lf| lf.name.clone()).collect(),
        });
        let mut train_row = vec![usize::MAX; candidates.candidates.len()];
        for (k, &i) in sup.train_idx.iter().enumerate() {
            train_row[i] = k;
        }
        for (i, (c, &p)) in candidates
            .candidates
            .iter()
            .zip(marginals.iter())
            .enumerate()
        {
            let doc = self.corpus.doc(c.doc);
            let in_train = train_row[i] != usize::MAX;
            observe::provenance::record(ProvenanceRecord {
                doc: doc.name.clone(),
                candidate_index: i,
                mentions: c
                    .mentions
                    .iter()
                    .map(|m| MentionProvenance {
                        sentence: m.sentence.0,
                        start: m.start,
                        end: m.end,
                        text: m.normalized_text(doc),
                    })
                    .collect(),
                throttlers_passed: self.extractor.throttlers.len() as u32,
                in_train,
                lf_votes: if in_train {
                    sup.label_matrix.row(train_row[i]).to_vec()
                } else {
                    Vec::new()
                },
                feature_counts: feats.modality_counts(i),
                // Lazy name resolution: symbols stay interned on the hot
                // path; stringify a small sample only while recording.
                feature_sample: feats.feature_sample(i, 8),
                marginal: p,
            });
        }
    }
}
