//! The three-phase Fonduer pipeline (paper Figure 2): KBC initialization →
//! candidate generation → multimodal featurization, supervision, and
//! classification.

use crate::error::ConfigError;
use crate::eval::{PrF1, Tuple};
use crate::kb::KnowledgeBase;
use crate::session::PipelineSession;
use fonduer_candidates::{CandidateExtractor, CandidateSet};
use fonduer_datamodel::Corpus;
use fonduer_features::FeatureConfig;
use fonduer_learning::ModelConfig;
use fonduer_nlp::fnv1a;
use fonduer_observe as observe;
use fonduer_supervision::{GenerativeOptions, LabelingFunction, LfDiagnostics};
use fonduer_synth::GoldKb;
use std::collections::BTreeSet;
use std::time::Duration;

/// A complete KBC task: the user inputs of all three phases.
pub struct Task {
    /// Candidate generation (schema + matchers + throttlers + scope).
    pub extractor: CandidateExtractor,
    /// Labeling functions for weak supervision.
    pub lfs: Vec<LabelingFunction>,
}

/// Which discriminative learner classifies candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// Fonduer's multimodal LSTM (configured via [`ModelConfig`]).
    MultimodalLstm,
    /// Sparse logistic regression over the explicit feature matrix (the
    /// human-tuned / SRV baselines).
    LogReg,
    /// The same sparse logistic regression trained by lock-free Hogwild!
    /// parallel SGD across [`PipelineConfig::n_threads`] workers. The only
    /// learner whose result legitimately depends on the thread count
    /// (racy weight updates), so it is also the only stage whose cache key
    /// folds `n_threads` in.
    HogwildLogReg,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Discriminative learner selection.
    pub learner: Learner,
    /// Neural model hyperparameters (for [`Learner::MultimodalLstm`]).
    pub model: ModelConfig,
    /// Feature-library modalities. Fonduer's default excludes textual
    /// features from the explicit library because the LSTM learns them.
    pub features: FeatureConfig,
    /// Generative-model options.
    pub gen_opts: GenerativeOptions,
    /// Classification threshold over marginals (§3.2 "Classification").
    pub threshold: f32,
    /// Hashed word-vocabulary size.
    pub vocab_size: usize,
    /// Sentence window (tokens each side of a mention).
    pub window: usize,
    /// Fraction of documents assigned to the training split.
    pub train_frac: f64,
    /// Split-hash seed.
    pub seed: u64,
    /// Worker threads for candidate generation, featurization, LF
    /// application, and Hogwild training (documents are independent units
    /// of work). 1 = sequential; the builder resolves 0 to the machine's
    /// available parallelism, and the `FONDUER_THREADS` environment
    /// variable overrides any value at pool-construction time.
    pub n_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            learner: Learner::MultimodalLstm,
            model: ModelConfig::default(),
            features: FeatureConfig {
                textual: false,
                structural: true,
                tabular: true,
                visual: true,
                hashing_bits: 0,
            },
            gen_opts: GenerativeOptions::default(),
            threshold: 0.5,
            vocab_size: 2048,
            window: 6,
            train_frac: 0.7,
            seed: 1,
            n_threads: 1,
        }
    }
}

impl PipelineConfig {
    /// Start building a configuration from the defaults, with validation
    /// at [`build`](PipelineConfigBuilder::build) time.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default(),
        }
    }

    /// Check every field against its valid domain: `threshold ∈ [0, 1]`,
    /// `train_frac ∈ [0, 1]`, `n_threads ≥ 1`, `vocab_size > 0`.
    ///
    /// [`PipelineSession`] constructors and setters call this; the one-shot
    /// [`run_task`] deliberately does not, for backwards compatibility.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(ConfigError::Threshold {
                value: self.threshold,
            });
        }
        if !(0.0..=1.0).contains(&self.train_frac) {
            return Err(ConfigError::TrainFrac {
                value: self.train_frac,
            });
        }
        if self.n_threads < 1 {
            return Err(ConfigError::Threads {
                value: self.n_threads,
            });
        }
        if self.vocab_size == 0 {
            return Err(ConfigError::VocabSize {
                value: self.vocab_size,
            });
        }
        if self.features.hashing_bits > 30 {
            return Err(ConfigError::HashingBits {
                value: self.features.hashing_bits,
            });
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`] with domain validation.
///
/// ```
/// use fonduer_core::{Learner, PipelineConfig};
/// let cfg = PipelineConfig::builder()
///     .learner(Learner::LogReg)
///     .threshold(0.6)
///     .n_threads(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.n_threads, 4);
/// assert!(PipelineConfig::builder().threshold(1.5).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Discriminative learner selection.
    pub fn learner(mut self, learner: Learner) -> Self {
        self.cfg.learner = learner;
        self
    }

    /// Neural model hyperparameters.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.cfg.model = model;
        self
    }

    /// Feature-library modalities.
    pub fn features(mut self, features: FeatureConfig) -> Self {
        self.cfg.features = features;
        self
    }

    /// Feature-hashing mode: `bits` in `1..=30` buckets features into
    /// `1 << bits` columns without a vocabulary; `0` restores the interned
    /// vocab (validated at [`build`](Self::build) time).
    pub fn feature_hashing(mut self, bits: u8) -> Self {
        self.cfg.features.hashing_bits = bits;
        self
    }

    /// Generative-model options.
    pub fn gen_opts(mut self, gen_opts: GenerativeOptions) -> Self {
        self.cfg.gen_opts = gen_opts;
        self
    }

    /// Classification threshold over marginals (must lie in `[0, 1]`).
    pub fn threshold(mut self, threshold: f32) -> Self {
        self.cfg.threshold = threshold;
        self
    }

    /// Hashed word-vocabulary size (must be positive).
    pub fn vocab_size(mut self, vocab_size: usize) -> Self {
        self.cfg.vocab_size = vocab_size;
        self
    }

    /// Sentence window (tokens each side of a mention).
    pub fn window(mut self, window: usize) -> Self {
        self.cfg.window = window;
        self
    }

    /// Fraction of documents in the training split (must lie in `[0, 1]`).
    pub fn train_frac(mut self, train_frac: f64) -> Self {
        self.cfg.train_frac = train_frac;
        self
    }

    /// Split-hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Worker threads for the parallel stages. `0` resolves to the
    /// machine's available parallelism at [`build`](Self::build) time.
    pub fn n_threads(mut self, n_threads: usize) -> Self {
        self.cfg.n_threads = n_threads;
        self
    }

    /// Validate and produce the configuration. A requested thread count of
    /// `0` is resolved to the detected core count here, so the built config
    /// always satisfies `n_threads ≥ 1`.
    pub fn build(mut self) -> Result<PipelineConfig, ConfigError> {
        if self.cfg.n_threads == 0 {
            self.cfg.n_threads = fonduer_par::resolve_threads(0);
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Wall-clock stage timings.
///
/// Stored as full-resolution [`Duration`]s (derived from the same
/// measurements the `fonduer-observe` spans record), so sub-millisecond
/// stages no longer truncate to zero; the `*_ms` accessors keep the
/// millisecond-oriented reporting surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Candidate generation.
    pub candgen: Duration,
    /// Multimodal featurization.
    pub featurize: Duration,
    /// LF application + generative model.
    pub supervise: Duration,
    /// Discriminative training.
    pub train: Duration,
    /// Inference over all candidates.
    pub infer: Duration,
}

impl Timings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.candgen + self.featurize + self.supervise + self.train + self.infer
    }

    /// Candidate generation, in (fractional) milliseconds.
    pub fn candgen_ms(&self) -> f64 {
        self.candgen.as_secs_f64() * 1e3
    }

    /// Featurization, in (fractional) milliseconds.
    pub fn featurize_ms(&self) -> f64 {
        self.featurize.as_secs_f64() * 1e3
    }

    /// Supervision, in (fractional) milliseconds.
    pub fn supervise_ms(&self) -> f64 {
        self.supervise.as_secs_f64() * 1e3
    }

    /// Discriminative training, in (fractional) milliseconds.
    pub fn train_ms(&self) -> f64 {
        self.train.as_secs_f64() * 1e3
    }

    /// Inference, in (fractional) milliseconds.
    pub fn infer_ms(&self) -> f64 {
        self.infer.as_secs_f64() * 1e3
    }

    /// Total pipeline time, in (fractional) milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total().as_secs_f64() * 1e3
    }
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// All extracted candidates.
    pub candidates: CandidateSet,
    /// Marginal P(true) per candidate (aligned with `candidates`).
    pub marginals: Vec<f32>,
    /// The output knowledge base (all documents).
    pub kb: KnowledgeBase,
    /// Documents in the training split.
    pub train_docs: BTreeSet<String>,
    /// Documents in the held-out split.
    pub test_docs: BTreeSet<String>,
    /// Quality on the held-out split against gold.
    pub metrics: PrF1,
    /// Fraction of training candidates with at least one LF label.
    pub label_coverage: f64,
    /// Per-LF error-analysis table over the training label matrix
    /// (empirical accuracy included when `gold` was non-empty).
    pub lf_diagnostics: LfDiagnostics,
    /// Stage timings.
    pub timings: Timings,
}

/// Assign a document to the training split by name hash.
pub fn is_train_doc(name: &str, train_frac: f64, seed: u64) -> bool {
    let mut key = name.as_bytes().to_vec();
    key.extend_from_slice(&seed.to_le_bytes());
    let h = fnv1a(&key) % 10_000;
    (h as f64 / 10_000.0) < train_frac
}

/// Run the full pipeline for one task on one corpus, evaluating against
/// `gold` on the held-out document split.
///
/// This is the one-shot convenience surface: it drives a single-use
/// [`PipelineSession`] through all six stages and returns its output.
/// Iterative workflows (tweak LFs, re-run) should hold a session directly
/// so the candidate and feature artifacts are reused across runs.
pub fn run_task(
    corpus: &Corpus,
    gold: &GoldKb,
    task: &Task,
    cfg: &PipelineConfig,
) -> PipelineOutput {
    let _task_span = observe::span("run_task");
    let mut session =
        PipelineSession::compat(corpus, gold, &task.extractor, &task.lfs, cfg.clone());
    session
        .output()
        .expect("lenient pipeline session is infallible")
}

/// Reachable-tuple set of a candidate extractor: the distinct `(doc,
/// normalized args)` pairs it can produce. Used for the oracle upper bounds
/// of Table 2 and the context-scope study of Figure 6.
pub fn reachable_tuples(corpus: &Corpus, extractor: &CandidateExtractor) -> BTreeSet<Tuple> {
    let set = extractor.extract(corpus);
    set.candidates
        .iter()
        .map(|c| {
            let doc = corpus.doc(c.doc);
            (doc.name.clone(), c.arg_texts(doc))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_roughly_fractional() {
        let names: Vec<String> = (0..1000).map(|i| format!("doc_{i}")).collect();
        let train = names.iter().filter(|n| is_train_doc(n, 0.7, 1)).count();
        assert!((600..800).contains(&train), "{train}");
        for n in &names {
            assert_eq!(is_train_doc(n, 0.7, 1), is_train_doc(n, 0.7, 1));
        }
        // Different seed gives a different split.
        let set1: BTreeSet<&String> = names.iter().filter(|n| is_train_doc(n, 0.7, 1)).collect();
        let set2: BTreeSet<&String> = names.iter().filter(|n| is_train_doc(n, 0.7, 2)).collect();
        assert_ne!(set1, set2);
    }

    #[test]
    fn extreme_fractions() {
        assert!(!is_train_doc("a", 0.0, 1));
        assert!(is_train_doc("a", 1.0, 1));
    }

    #[test]
    fn builder_validates_domains() {
        assert!(PipelineConfig::default().validate().is_ok());
        let cfg = PipelineConfig::builder()
            .learner(Learner::LogReg)
            .threshold(0.25)
            .train_frac(0.5)
            .vocab_size(128)
            .window(3)
            .seed(7)
            .n_threads(2)
            .model(ModelConfig::default())
            .features(FeatureConfig::default())
            .gen_opts(GenerativeOptions::default())
            .build()
            .unwrap();
        assert_eq!(cfg.learner, Learner::LogReg);
        assert_eq!(cfg.vocab_size, 128);
        assert_eq!(cfg.n_threads, 2);

        assert_eq!(
            PipelineConfig::builder()
                .threshold(1.5)
                .build()
                .unwrap_err(),
            ConfigError::Threshold { value: 1.5 }
        );
        // NaN is outside every range.
        assert!(PipelineConfig::builder()
            .threshold(f32::NAN)
            .build()
            .is_err());
        assert!(PipelineConfig::builder()
            .train_frac(f64::NAN)
            .build()
            .is_err());
        assert_eq!(
            PipelineConfig::builder()
                .train_frac(-0.1)
                .build()
                .unwrap_err(),
            ConfigError::TrainFrac { value: -0.1 }
        );
        // A requested 0 resolves to the detected core count at build time
        // (raw structs bypassing the builder still require ≥ 1).
        let auto = PipelineConfig::builder().n_threads(0).build().unwrap();
        assert!(auto.n_threads >= 1);
        assert_eq!(
            PipelineConfig {
                n_threads: 0,
                ..PipelineConfig::default()
            }
            .validate()
            .unwrap_err(),
            ConfigError::Threads { value: 0 }
        );
        assert_eq!(
            PipelineConfig::builder().vocab_size(0).build().unwrap_err(),
            ConfigError::VocabSize { value: 0 }
        );
        let hashed = PipelineConfig::builder()
            .feature_hashing(18)
            .build()
            .unwrap();
        assert_eq!(hashed.features.hashing_bits, 18);
        assert_eq!(
            PipelineConfig::builder()
                .feature_hashing(31)
                .build()
                .unwrap_err(),
            ConfigError::HashingBits { value: 31 }
        );
    }
}
