//! The three-phase Fonduer pipeline (paper Figure 2): KBC initialization →
//! candidate generation → multimodal featurization, supervision, and
//! classification.

use crate::eval::{eval_tuples, gold_tuples_for_docs, PrF1, Tuple};
use crate::kb::KnowledgeBase;
use fonduer_candidates::{CandidateExtractor, CandidateSet};
use fonduer_datamodel::Corpus;
use fonduer_features::{FeatureConfig, Featurizer};
use fonduer_learning::{prepare, FonduerModel, LogRegModel, ModelConfig, ProbClassifier};
use fonduer_nlp::{fnv1a, HashedVocab};
use fonduer_observe as observe;
use fonduer_observe::{MentionProvenance, ProvenanceMeta, ProvenanceRecord};
use fonduer_supervision::{
    GenerativeModel, GenerativeOptions, LabelMatrix, LabelingFunction, LfDiagnostics,
};
use fonduer_synth::GoldKb;
use std::collections::BTreeSet;
use std::time::Duration;

/// A complete KBC task: the user inputs of all three phases.
pub struct Task {
    /// Candidate generation (schema + matchers + throttlers + scope).
    pub extractor: CandidateExtractor,
    /// Labeling functions for weak supervision.
    pub lfs: Vec<LabelingFunction>,
}

/// Which discriminative learner classifies candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// Fonduer's multimodal LSTM (configured via [`ModelConfig`]).
    MultimodalLstm,
    /// Sparse logistic regression over the explicit feature matrix (the
    /// human-tuned / SRV baselines).
    LogReg,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Discriminative learner selection.
    pub learner: Learner,
    /// Neural model hyperparameters (for [`Learner::MultimodalLstm`]).
    pub model: ModelConfig,
    /// Feature-library modalities. Fonduer's default excludes textual
    /// features from the explicit library because the LSTM learns them.
    pub features: FeatureConfig,
    /// Generative-model options.
    pub gen_opts: GenerativeOptions,
    /// Classification threshold over marginals (§3.2 "Classification").
    pub threshold: f32,
    /// Hashed word-vocabulary size.
    pub vocab_size: usize,
    /// Sentence window (tokens each side of a mention).
    pub window: usize,
    /// Fraction of documents assigned to the training split.
    pub train_frac: f64,
    /// Split-hash seed.
    pub seed: u64,
    /// Worker threads for candidate generation and featurization (documents
    /// are independent units of work). 1 = sequential.
    pub n_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            learner: Learner::MultimodalLstm,
            model: ModelConfig::default(),
            features: FeatureConfig {
                textual: false,
                structural: true,
                tabular: true,
                visual: true,
            },
            gen_opts: GenerativeOptions::default(),
            threshold: 0.5,
            vocab_size: 2048,
            window: 6,
            train_frac: 0.7,
            seed: 1,
            n_threads: 1,
        }
    }
}

/// Wall-clock stage timings.
///
/// Stored as full-resolution [`Duration`]s (derived from the same
/// measurements the `fonduer-observe` spans record), so sub-millisecond
/// stages no longer truncate to zero; the `*_ms` accessors keep the
/// millisecond-oriented reporting surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Candidate generation.
    pub candgen: Duration,
    /// Multimodal featurization.
    pub featurize: Duration,
    /// LF application + generative model.
    pub supervise: Duration,
    /// Discriminative training.
    pub train: Duration,
    /// Inference over all candidates.
    pub infer: Duration,
}

impl Timings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.candgen + self.featurize + self.supervise + self.train + self.infer
    }

    /// Candidate generation, in (fractional) milliseconds.
    pub fn candgen_ms(&self) -> f64 {
        self.candgen.as_secs_f64() * 1e3
    }

    /// Featurization, in (fractional) milliseconds.
    pub fn featurize_ms(&self) -> f64 {
        self.featurize.as_secs_f64() * 1e3
    }

    /// Supervision, in (fractional) milliseconds.
    pub fn supervise_ms(&self) -> f64 {
        self.supervise.as_secs_f64() * 1e3
    }

    /// Discriminative training, in (fractional) milliseconds.
    pub fn train_ms(&self) -> f64 {
        self.train.as_secs_f64() * 1e3
    }

    /// Inference, in (fractional) milliseconds.
    pub fn infer_ms(&self) -> f64 {
        self.infer.as_secs_f64() * 1e3
    }

    /// Total pipeline time, in (fractional) milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total().as_secs_f64() * 1e3
    }
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// All extracted candidates.
    pub candidates: CandidateSet,
    /// Marginal P(true) per candidate (aligned with `candidates`).
    pub marginals: Vec<f32>,
    /// The output knowledge base (all documents).
    pub kb: KnowledgeBase,
    /// Documents in the training split.
    pub train_docs: BTreeSet<String>,
    /// Documents in the held-out split.
    pub test_docs: BTreeSet<String>,
    /// Quality on the held-out split against gold.
    pub metrics: PrF1,
    /// Fraction of training candidates with at least one LF label.
    pub label_coverage: f64,
    /// Per-LF error-analysis table over the training label matrix
    /// (empirical accuracy included when `gold` was non-empty).
    pub lf_diagnostics: LfDiagnostics,
    /// Stage timings.
    pub timings: Timings,
}

/// Assign a document to the training split by name hash.
pub fn is_train_doc(name: &str, train_frac: f64, seed: u64) -> bool {
    let mut key = name.as_bytes().to_vec();
    key.extend_from_slice(&seed.to_le_bytes());
    let h = fnv1a(&key) % 10_000;
    (h as f64 / 10_000.0) < train_frac
}

/// Run the full pipeline for one task on one corpus, evaluating against
/// `gold` on the held-out document split.
pub fn run_task(
    corpus: &Corpus,
    gold: &GoldKb,
    task: &Task,
    cfg: &PipelineConfig,
) -> PipelineOutput {
    let _task_span = observe::span("run_task");

    // Phase 2: candidate generation.
    let (candidates, candgen) = observe::timed("candgen", || {
        task.extractor.extract_parallel(corpus, cfg.n_threads)
    });

    // Split documents.
    let mut train_docs = BTreeSet::new();
    let mut test_docs = BTreeSet::new();
    for (_, doc) in corpus.iter() {
        if is_train_doc(&doc.name, cfg.train_frac, cfg.seed) {
            train_docs.insert(doc.name.clone());
        } else {
            test_docs.insert(doc.name.clone());
        }
    }

    // Phase 3a: multimodal featurization.
    let (feats, featurize) = observe::timed("featurize", || {
        Featurizer::new(cfg.features).featurize_parallel(corpus, &candidates, cfg.n_threads)
    });
    let vocab = HashedVocab::new(cfg.vocab_size);
    let dataset = prepare(corpus, &candidates, &feats, &vocab, cfg.window);

    // Phase 3b: supervision on the training split.
    let ((label_matrix, train_idx, train_marginals, label_coverage), supervise) =
        observe::timed("supervise", || {
            let train_idx: Vec<usize> = candidates
                .candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| train_docs.contains(&corpus.doc(c.doc).name))
                .map(|(i, _)| i)
                .collect();
            let train_subset = CandidateSet {
                schema: candidates.schema.clone(),
                candidates: train_idx
                    .iter()
                    .map(|&i| candidates.candidates[i].clone())
                    .collect(),
            };
            let lf_refs: Vec<&LabelingFunction> = task.lfs.iter().collect();
            let label_matrix = LabelMatrix::apply(&lf_refs, corpus, &train_subset);
            let gen = GenerativeModel::fit(&label_matrix, &cfg.gen_opts);
            let train_marginals = gen.predict(&label_matrix);
            let label_coverage = label_matrix.total_coverage();
            (label_matrix, train_idx, train_marginals, label_coverage)
        });
    observe::gauge_set("supervision.label_coverage", label_coverage);

    // Keep only candidates some LF labeled (Snorkel's behavior).
    let mut train_inputs = Vec::new();
    let mut train_targets = Vec::new();
    for (k, &i) in train_idx.iter().enumerate() {
        if label_matrix.row(k).iter().any(|&v| v != 0) {
            train_inputs.push(dataset.inputs[i].clone());
            train_targets.push(train_marginals[k] as f32);
        }
    }

    // Phase 3c: discriminative training + classification.
    let (model, train) = observe::timed("train", || {
        let mut model: Box<dyn ProbClassifier> = match cfg.learner {
            Learner::MultimodalLstm => Box::new(FonduerModel::new(
                cfg.model.clone(),
                dataset.vocab_size,
                dataset.n_features,
                dataset.arity,
            )),
            Learner::LogReg => Box::new(LogRegModel::new(dataset.n_features, cfg.seed)),
        };
        model.fit(&train_inputs, &train_targets);
        model
    });
    let (marginals, infer) = observe::timed("infer", || model.predict(&dataset.inputs));
    observe::counter("infer.candidates", marginals.len() as u64);

    // LF error-analysis table over the training label matrix.
    let lf_names: Vec<String> = task.lfs.iter().map(|lf| lf.name.clone()).collect();
    let train_gold: Vec<bool> = train_idx
        .iter()
        .map(|&i| {
            let c = &candidates.candidates[i];
            let d = corpus.doc(c.doc);
            gold.contains(&candidates.schema.name, &d.name, &c.arg_texts(d))
        })
        .collect();
    let lf_diagnostics = LfDiagnostics::compute(
        &lf_names,
        &label_matrix,
        (!gold.is_empty()).then_some(train_gold.as_slice()),
    );
    lf_diagnostics.publish_gauges();

    // Flight recorder: one provenance record per kept candidate, tracing it
    // from mention spans through throttling, LF votes, and feature mix to
    // its marginal. Skipped entirely when FONDUER_PROVENANCE=0.
    if observe::provenance::recording_enabled() {
        let _span = observe::span("provenance");
        observe::provenance::set_meta(ProvenanceMeta {
            relation: candidates.schema.name.clone(),
            arg_names: candidates.schema.arg_names.clone(),
            matchers: task.extractor.matcher_names(),
            scope: task.extractor.scope.label().to_string(),
            throttlers: task.extractor.throttler_names(),
            lf_names,
        });
        let mut train_row = vec![usize::MAX; candidates.candidates.len()];
        for (k, &i) in train_idx.iter().enumerate() {
            train_row[i] = k;
        }
        for (i, (c, &p)) in candidates.candidates.iter().zip(&marginals).enumerate() {
            let doc = corpus.doc(c.doc);
            let in_train = train_row[i] != usize::MAX;
            observe::provenance::record(ProvenanceRecord {
                doc: doc.name.clone(),
                candidate_index: i,
                mentions: c
                    .mentions
                    .iter()
                    .map(|m| MentionProvenance {
                        sentence: m.sentence.0,
                        start: m.start,
                        end: m.end,
                        text: m.normalized_text(doc),
                    })
                    .collect(),
                throttlers_passed: task.extractor.throttlers.len() as u32,
                in_train,
                lf_votes: if in_train {
                    label_matrix.row(train_row[i]).to_vec()
                } else {
                    Vec::new()
                },
                feature_counts: feats.modality_counts(i),
                marginal: p,
            });
        }
    }

    finish(
        corpus,
        gold,
        candidates,
        marginals,
        cfg,
        train_docs,
        test_docs,
        label_coverage,
        lf_diagnostics,
        Timings {
            candgen,
            featurize,
            supervise,
            train,
            infer,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    corpus: &Corpus,
    gold: &GoldKb,
    candidates: CandidateSet,
    marginals: Vec<f32>,
    cfg: &PipelineConfig,
    train_docs: BTreeSet<String>,
    test_docs: BTreeSet<String>,
    label_coverage: f64,
    lf_diagnostics: LfDiagnostics,
    timings: Timings,
) -> PipelineOutput {
    let relation = candidates.schema.name.clone();
    let arg_names = candidates.schema.arg_names.clone();
    let tuples_with_p: Vec<(Tuple, f32)> = candidates
        .candidates
        .iter()
        .zip(&marginals)
        .map(|(c, &p)| {
            let doc = corpus.doc(c.doc);
            ((doc.name.clone(), c.arg_texts(doc)), p)
        })
        .collect();
    // Held-out evaluation (before the KB takes ownership of the tuples).
    let pred_test: BTreeSet<Tuple> = tuples_with_p
        .iter()
        .filter(|((d, _), p)| *p >= cfg.threshold && test_docs.contains(d))
        .map(|(t, _)| t.clone())
        .collect();
    let gold_test = gold_tuples_for_docs(gold, &relation, &test_docs);
    let metrics = eval_tuples(&pred_test, &gold_test);
    let kb = KnowledgeBase::from_marginals(&relation, &arg_names, tuples_with_p, cfg.threshold);
    PipelineOutput {
        candidates,
        marginals,
        kb,
        train_docs,
        test_docs,
        metrics,
        label_coverage,
        lf_diagnostics,
        timings,
    }
}

/// Reachable-tuple set of a candidate extractor: the distinct `(doc,
/// normalized args)` pairs it can produce. Used for the oracle upper bounds
/// of Table 2 and the context-scope study of Figure 6.
pub fn reachable_tuples(corpus: &Corpus, extractor: &CandidateExtractor) -> BTreeSet<Tuple> {
    let set = extractor.extract(corpus);
    set.candidates
        .iter()
        .map(|c| {
            let doc = corpus.doc(c.doc);
            (doc.name.clone(), c.arg_texts(doc))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_roughly_fractional() {
        let names: Vec<String> = (0..1000).map(|i| format!("doc_{i}")).collect();
        let train = names.iter().filter(|n| is_train_doc(n, 0.7, 1)).count();
        assert!((600..800).contains(&train), "{train}");
        for n in &names {
            assert_eq!(is_train_doc(n, 0.7, 1), is_train_doc(n, 0.7, 1));
        }
        // Different seed gives a different split.
        let set1: BTreeSet<&String> = names.iter().filter(|n| is_train_doc(n, 0.7, 1)).collect();
        let set2: BTreeSet<&String> = names.iter().filter(|n| is_train_doc(n, 0.7, 2)).collect();
        assert_ne!(set1, set2);
    }

    #[test]
    fn extreme_fractions() {
        assert!(!is_train_doc("a", 0.0, 1));
        assert!(is_train_doc("a", 1.0, 1));
    }
}
