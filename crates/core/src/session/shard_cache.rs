//! The per-document shard cache behind incremental
//! [`PipelineSession`](crate::PipelineSession) recomputation.
//!
//! Stage artifacts (candidate slices, feature CSR blocks, LF vote blocks)
//! are cached per document under a [`ShardKey`] —
//! `(document content hash, stage config fingerprint)` — so mutating one
//! document invalidates exactly that document's shards: its content hash
//! changes, every other key still hits. Shards are content-addressed, not
//! position-addressed, which keeps them valid across the `DocId` shifts a
//! removal causes.
//!
//! Eviction is deterministic LRU over an insertion/access tick, bounded by
//! a capacity the session resizes to track the corpus (a few generations
//! of shards per document). Hits, misses, and evictions are mirrored to
//! the `fonduer-observe` counters
//! `session.shard_cache.{hit,miss,evict}` (exported by `fonduer-obsd` as
//! `fonduer_session_shard_cache_{hit,miss,evict}_total`).

use fonduer_observe as observe;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one per-document stage shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// [`Document::content_hash`](fonduer_datamodel::Document::content_hash)
    /// of the document the shard was computed from.
    pub doc_hash: u64,
    /// Fingerprint of every stage input that shapes the shard (extractor,
    /// feature config, LF names, ...).
    pub config: u64,
}

struct Entry<T> {
    value: Arc<T>,
    last_used: u64,
}

/// A bounded, deterministically-LRU-evicting map from [`ShardKey`] to one
/// stage's per-document shard type.
pub struct ShardCache<T> {
    map: HashMap<ShardKey, Entry<T>>,
    /// Monotonic access clock; unique per get/insert, so LRU order is a
    /// total order and eviction is deterministic.
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evicts: u64,
}

impl<T> ShardCache<T> {
    /// An empty cache holding at most `capacity` shards.
    pub fn new(capacity: usize) -> Self {
        // Register the counters at zero so a live `/metrics` scrape shows
        // the full family even before any traversal runs.
        observe::counter("session.shard_cache.hit", 0);
        observe::counter("session.shard_cache.miss", 0);
        observe::counter("session.shard_cache.evict", 0);
        Self {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evicts: 0,
        }
    }

    /// Grow or shrink the capacity (evicting LRU-first if over the new
    /// bound). Sessions call this as the corpus grows or shrinks.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_over_capacity();
    }

    /// Look up a shard, counting a hit or miss and refreshing LRU order.
    pub fn get(&mut self, key: ShardKey) -> Option<Arc<T>> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                observe::counter("session.shard_cache.hit", 1);
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses += 1;
                observe::counter("session.shard_cache.miss", 1);
                None
            }
        }
    }

    /// Insert (or overwrite) a shard, evicting least-recently-used entries
    /// if the cache is over capacity.
    pub fn insert(&mut self, key: ShardKey, value: Arc<T>) {
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache over capacity implies at least one entry");
            self.map.remove(&victim);
            self.evicts += 1;
            observe::counter("session.shard_cache.evict", 1);
        }
    }

    /// Shards currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every shard (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evicts(&self) -> u64 {
        self.evicts
    }
}

/// Aggregated shard-cache state for reporting: lifetime hit/miss/evict
/// totals across a session's candidate, feature, and label caches plus the
/// last traversal's recomputed-document count — the `RunReport`
/// incremental-run section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheSummary {
    /// Shard lookups served from cache (all stages, session lifetime).
    pub hits: u64,
    /// Shard lookups that required recomputation.
    pub misses: u64,
    /// Shards evicted under capacity pressure.
    pub evicts: u64,
    /// Shards currently resident across all stage caches.
    pub cached: usize,
    /// Documents with at least one shard recomputed in the last traversal
    /// (1 after a warm single-document upsert; the whole corpus when cold).
    pub recomputed_docs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(doc: u64, cfg: u64) -> ShardKey {
        ShardKey {
            doc_hash: doc,
            config: cfg,
        }
    }

    #[test]
    fn hit_miss_counting() {
        let mut c: ShardCache<u32> = ShardCache::new(8);
        assert!(c.get(k(1, 1)).is_none());
        c.insert(k(1, 1), Arc::new(42));
        assert_eq!(c.get(k(1, 1)).as_deref(), Some(&42));
        assert!(
            c.get(k(1, 2)).is_none(),
            "config fingerprint is part of the key"
        );
        assert!(c.get(k(2, 1)).is_none(), "doc hash is part of the key");
        assert_eq!((c.hits(), c.misses(), c.evicts()), (1, 3, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut c: ShardCache<u32> = ShardCache::new(2);
        c.insert(k(1, 0), Arc::new(1));
        c.insert(k(2, 0), Arc::new(2));
        // Touch 1 so 2 is now least recently used.
        assert!(c.get(k(1, 0)).is_some());
        c.insert(k(3, 0), Arc::new(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evicts(), 1);
        assert!(c.get(k(2, 0)).is_none(), "LRU entry evicted");
        assert!(c.get(k(1, 0)).is_some());
        assert!(c.get(k(3, 0)).is_some());
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c: ShardCache<u32> = ShardCache::new(4);
        for i in 0..4 {
            c.insert(k(i, 0), Arc::new(i as u32));
        }
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evicts(), 2);
        // The two most recently inserted survive.
        assert!(c.get(k(2, 0)).is_some());
        assert!(c.get(k(3, 0)).is_some());
        c.clear();
        assert!(c.is_empty());
    }
}
