//! # fonduer-core
//!
//! End-to-end Fonduer pipeline (paper Figure 2): given a corpus, a relation
//! schema with matchers and throttlers, and a labeling-function library,
//! produce a knowledge base and held-out quality metrics.
//!
//! * [`pipeline`] — the three-phase orchestration (one-shot [`run_task`]);
//! * [`session`] — the stateful, artifact-cached [`PipelineSession`] for
//!   iterative KBC;
//! * [`error`] — typed errors for the session surface;
//! * [`eval`] — P/R/F1, oracle upper bounds (Table 2), KB comparison
//!   (Table 3);
//! * [`kb`] — the relational output;
//! * [`domains`] — matchers/throttlers/LF libraries for the four
//!   evaluation applications;
//! * [`analysis`] — the error-analysis loop's LF reports and error buckets.

#![warn(missing_docs)]

pub mod analysis;
pub mod domains;
pub mod error;
pub mod eval;
pub mod kb;
pub mod pipeline;
pub mod report;
pub mod session;

pub use analysis::{ErrorBuckets, LfReport, LfRow};
pub use error::{ConfigError, Error};
pub use eval::{
    compare_with_existing_kb, eval_tuples, gold_tuples_for_docs, oracle_upper_bound, KbComparison,
    PrF1, Tuple,
};
pub use kb::KnowledgeBase;
pub use pipeline::{
    is_train_doc, reachable_tuples, run_task, Learner, PipelineConfig, PipelineConfigBuilder,
    PipelineOutput, Task, Timings,
};
pub use report::{CriticalPath, DocReport, PoolTelemetry, RunReport, StageCoverage, StageTiming};
pub use session::shard_cache::{ShardCacheSummary, ShardKey};
pub use session::{PipelineSession, SessionStats, StageId, StageStats, SupervisionArtifact};
