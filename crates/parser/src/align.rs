//! Word-sequence alignment across converted document formats.
//!
//! Paper §3.1: "We align the word sequences of the converted file with their
//! originals by checking if both their characters and number of repeated
//! occurrences before the current word are the same." This module implements
//! exactly that keying scheme — a word matches if its text and its
//! occurrence ordinal agree — which tolerates insertions/deletions that
//! conversion tools introduce.

use std::collections::HashMap;

/// Alignment of a converted word sequence against the original sequence.
///
/// `mapping[i] = Some(j)` means converted word `i` is original word `j`;
/// `None` means the converted word has no counterpart (a conversion
/// artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Per-converted-word mapping into the original sequence.
    pub mapping: Vec<Option<usize>>,
    /// Number of original words that were not matched by any converted word.
    pub unmatched_original: usize,
}

impl Alignment {
    /// Fraction of converted words successfully aligned (1.0 = perfect).
    pub fn coverage(&self) -> f64 {
        if self.mapping.is_empty() {
            return 1.0;
        }
        let hit = self.mapping.iter().filter(|m| m.is_some()).count();
        hit as f64 / self.mapping.len() as f64
    }
}

/// Align `converted` to `original` by `(word, occurrence-ordinal)` keys.
pub fn align_words<S: AsRef<str>>(original: &[S], converted: &[S]) -> Alignment {
    // Index original words by (text, ordinal).
    let mut index: HashMap<(&str, usize), usize> = HashMap::with_capacity(original.len());
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (j, w) in original.iter().enumerate() {
        let w = w.as_ref();
        let ordinal = counts.entry(w).or_insert(0);
        index.insert((w, *ordinal), j);
        *ordinal += 1;
    }
    let mut seen: HashMap<&str, usize> = HashMap::new();
    let mut used = vec![false; original.len()];
    let mapping: Vec<Option<usize>> = converted
        .iter()
        .map(|w| {
            let w = w.as_ref();
            let ordinal = seen.entry(w).or_insert(0);
            let hit = index.get(&(w, *ordinal)).copied();
            *ordinal += 1;
            if let Some(j) = hit {
                used[j] = true;
            }
            hit
        })
        .collect();
    let unmatched_original = used.iter().filter(|&&u| !u).count();
    Alignment {
        mapping,
        unmatched_original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let o = words("a b c a");
        let a = align_words(&o, &o);
        assert_eq!(a.mapping, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(a.coverage(), 1.0);
        assert_eq!(a.unmatched_original, 0);
    }

    #[test]
    fn repeated_words_align_by_ordinal() {
        let o = words("200 mA 200 V");
        let c = words("200 200");
        let a = align_words(&o, &c);
        // First "200" in converted = first "200" in original, etc.
        assert_eq!(a.mapping, vec![Some(0), Some(2)]);
        assert_eq!(a.unmatched_original, 2);
    }

    #[test]
    fn conversion_insertions_map_to_none() {
        let o = words("collector current IC");
        let c = words("collector ARTIFACT current IC");
        let a = align_words(&o, &c);
        assert_eq!(a.mapping, vec![Some(0), None, Some(1), Some(2)]);
        assert!((a.coverage() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn deletions_leave_unmatched_originals() {
        let o = words("a b c d");
        let c = words("a d");
        let a = align_words(&o, &c);
        assert_eq!(a.mapping, vec![Some(0), Some(3)]);
        assert_eq!(a.unmatched_original, 2);
    }

    #[test]
    fn extra_repetitions_beyond_original_count() {
        let o = words("x");
        let c = words("x x x");
        let a = align_words(&o, &c);
        assert_eq!(a.mapping, vec![Some(0), None, None]);
    }

    #[test]
    fn empty_sequences() {
        let e: Vec<&str> = vec![];
        let a = align_words(&e, &e);
        assert!(a.mapping.is_empty());
        assert_eq!(a.coverage(), 1.0);
    }
}
