//! A tolerant markup (HTML/XML subset) parser.
//!
//! Fonduer consumes documents "of diverse formats, including PDF, HTML, and
//! XML" (paper §1), converting them into its unified data model. This module
//! provides the markup front end: a small, dependency-free tokenizer and
//! tree builder handling elements, attributes (quoted or bare), text,
//! comments, self-closing tags, and HTML void elements. Unknown or
//! mismatched closing tags are recovered from rather than rejected, because
//! real converted documents are messy.

/// A node in the parsed markup tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An element with a tag name, attributes, and children.
    Element(Element),
    /// A text node (entity-decoded).
    Text(String),
}

/// An element node.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Lower-cased tag name.
    pub tag: String,
    /// Attributes in source order (names lower-cased, values entity-decoded).
    pub attrs: Vec<(String, String)>,
    /// Child nodes in source order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(tag: impl Into<String>) -> Self {
        Self {
            tag: tag.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Concatenated text of all descendant text nodes, whitespace-normalized.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(&self.children, &mut out);
        out.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    /// Child elements with a given tag name.
    pub fn children_with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.tag == tag => Some(e),
            _ => None,
        })
    }

    /// First descendant element with a given tag, depth-first.
    pub fn find(&self, tag: &str) -> Option<&Element> {
        for n in &self.children {
            if let Node::Element(e) = n {
                if e.tag == tag {
                    return Some(e);
                }
                if let Some(found) = e.find(tag) {
                    return Some(found);
                }
            }
        }
        None
    }
}

fn collect_text(nodes: &[Node], out: &mut String) {
    for n in nodes {
        match n {
            Node::Text(t) => {
                out.push(' ');
                out.push_str(t);
            }
            Node::Element(e) => collect_text(&e.children, out),
        }
    }
}

/// HTML void elements: never have closing tags.
const VOID_ELEMENTS: &[&str] = &[
    "br", "img", "hr", "meta", "link", "input", "col", "area", "base", "embed", "source", "wbr",
];

/// Decode the five standard entities plus numeric character references.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        if let Some(semi) = rest[..rest.len().min(12)].find(';') {
            let entity = &rest[1..semi];
            let decoded = match entity {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                "nbsp" => Some(' '),
                _ => entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .or_else(|| entity.strip_prefix('#').and_then(|d| d.parse().ok()))
                    .and_then(char::from_u32),
            };
            if let Some(c) = decoded {
                out.push(c);
                rest = &rest[semi + 1..];
                continue;
            }
        }
        out.push('&');
        rest = &rest[1..];
    }
    out.push_str(rest);
    out
}

/// Parse a markup string into a forest of top-level nodes.
///
/// The parser is tolerant: a stray closing tag that matches an open ancestor
/// closes everything down to it; one that matches nothing is ignored.
pub fn parse(input: &str) -> Vec<Node> {
    let mut roots: Vec<Node> = Vec::new();
    // Stack of open elements.
    let mut stack: Vec<Element> = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;

    fn flush_text(text: &str, stack: &mut [Element], roots: &mut Vec<Node>) {
        // Trim before decoding so plain text (the common case) allocates
        // exactly once; entity-bearing text re-trims because a decoded
        // `&nbsp;` can leave fresh edge whitespace.
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        let owned = if trimmed.contains('&') {
            let decoded = decode_entities(trimmed);
            let t = decoded.trim();
            if t.is_empty() {
                return;
            }
            t.to_string()
        } else {
            trimmed.to_string()
        };
        let node = Node::Text(owned);
        if let Some(top) = stack.last_mut() {
            top.children.push(node);
        } else {
            roots.push(node);
        }
    }

    fn close_one(stack: &mut Vec<Element>, roots: &mut Vec<Node>) {
        if let Some(done) = stack.pop() {
            let node = Node::Element(done);
            if let Some(top) = stack.last_mut() {
                top.children.push(node);
            } else {
                roots.push(node);
            }
        }
    }

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Comment?
            if input[i..].starts_with("<!--") {
                let end = input[i..]
                    .find("-->")
                    .map(|p| i + p + 3)
                    .unwrap_or(input.len());
                i = end;
                continue;
            }
            // Doctype / processing instruction: skip to '>'.
            if input[i..].starts_with("<!") || input[i..].starts_with("<?") {
                let end = input[i..]
                    .find('>')
                    .map(|p| i + p + 1)
                    .unwrap_or(input.len());
                i = end;
                continue;
            }
            let close = match input[i..].find('>') {
                Some(p) => i + p,
                None => break, // Truncated tag: stop.
            };
            let inner = &input[i + 1..close];
            if let Some(name) = inner.strip_prefix('/') {
                // Closing tag: pop to the matching open element if any.
                // Open tags are stored lower-cased, so a case-insensitive
                // compare avoids allocating a lowered copy of the name.
                let name = name.trim();
                if stack.iter().any(|e| e.tag.eq_ignore_ascii_case(name)) {
                    while let Some(top) = stack.last() {
                        let is_match = top.tag.eq_ignore_ascii_case(name);
                        close_one(&mut stack, &mut roots);
                        if is_match {
                            break;
                        }
                    }
                }
            } else {
                let self_closing = inner.ends_with('/');
                let inner = inner.trim_end_matches('/');
                let (tag, attrs) = parse_tag_contents(inner);
                let void = self_closing || VOID_ELEMENTS.contains(&tag.as_str());
                let elem = Element {
                    tag,
                    attrs,
                    children: Vec::new(),
                };
                if void {
                    let node = Node::Element(elem);
                    if let Some(top) = stack.last_mut() {
                        top.children.push(node);
                    } else {
                        roots.push(node);
                    }
                } else {
                    stack.push(elem);
                }
            }
            i = close + 1;
        } else {
            let next_tag = input[i..].find('<').map(|p| i + p).unwrap_or(input.len());
            flush_text(&input[i..next_tag], &mut stack, &mut roots);
            i = next_tag;
        }
    }
    // Close any elements left open at EOF.
    while !stack.is_empty() {
        close_one(&mut stack, &mut roots);
    }
    roots
}

/// Lower-case a tag or attribute name into an owned `String`, skipping the
/// Unicode lowering pass when the input is already lower-case ASCII (the
/// overwhelmingly common case for real markup).
fn lowered(s: &str) -> String {
    if s.bytes().any(|b| b.is_ascii_uppercase()) || !s.is_ascii() {
        s.to_lowercase()
    } else {
        s.to_string()
    }
}

/// Parse the inside of a tag: name plus attributes. Byte-indexed — every
/// delimiter tested for (`=`, quotes, whitespace) is a single ASCII byte,
/// which never occurs inside a multi-byte UTF-8 sequence, so byte scanning
/// splits at exactly the same boundaries as the equivalent `char` walk
/// without collecting a `Vec<char>` per tag.
fn parse_tag_contents(inner: &str) -> (String, Vec<(String, String)>) {
    let inner = inner.trim();
    let bytes = inner.as_bytes();
    let name_end = bytes
        .iter()
        .position(|b| b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let tag = lowered(&inner[..name_end]);
    let mut attrs = Vec::new();
    let mut i = name_end;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name = lowered(&inner[name_start..i]);
        if name.is_empty() {
            i += 1;
            continue;
        }
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            let value = if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let quote = bytes[i];
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                let v = &inner[start..i];
                i += 1; // skip closing quote
                v
            } else {
                let start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                &inner[start..i]
            };
            attrs.push((name, decode_entities(value)));
        } else {
            // Bare boolean attribute.
            attrs.push((name, String::new()));
        }
    }
    (tag, attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_element(nodes: &[Node]) -> &Element {
        match &nodes[0] {
            Node::Element(e) => e,
            _ => panic!("expected element"),
        }
    }

    #[test]
    fn parses_nested_elements() {
        let nodes = parse("<div><p>Hello <b>world</b></p></div>");
        let div = first_element(&nodes);
        assert_eq!(div.tag, "div");
        let p = div.children_with_tag("p").next().unwrap();
        assert_eq!(p.text_content(), "Hello world");
    }

    #[test]
    fn parses_attributes() {
        let nodes = parse(r#"<td rowspan="2" colspan='3' class=value hidden>x</td>"#);
        let td = first_element(&nodes);
        assert_eq!(td.attr("rowspan"), Some("2"));
        assert_eq!(td.attr("colspan"), Some("3"));
        assert_eq!(td.attr("class"), Some("value"));
        assert_eq!(td.attr("hidden"), Some(""));
        assert_eq!(td.attr("missing"), None);
    }

    #[test]
    fn void_and_self_closing_elements() {
        let nodes = parse("<p>a<br>b<img src='x.png'/>c</p>");
        let p = first_element(&nodes);
        assert_eq!(p.children.len(), 5);
        assert_eq!(p.text_content(), "a b c");
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(decode_entities("a &amp; b &lt;c&gt;"), "a & b <c>");
        assert_eq!(decode_entities("&#176;C &#x2264;"), "°C ≤");
        assert_eq!(decode_entities("no entities"), "no entities");
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn recovers_from_unclosed_tags() {
        let nodes = parse("<div><p>one<p>two</div>after");
        // The stray </div> closes both <p>s; trailing text survives.
        assert_eq!(nodes.len(), 2);
        let div = first_element(&nodes);
        assert_eq!(div.tag, "div");
        assert_eq!(nodes[1], Node::Text("after".to_string()));
    }

    #[test]
    fn ignores_unmatched_closing_tag() {
        let nodes = parse("<p>text</b></p>");
        let p = first_element(&nodes);
        assert_eq!(p.text_content(), "text");
    }

    #[test]
    fn skips_comments_and_doctype() {
        let nodes = parse("<!DOCTYPE html><!-- hi --><p>x</p>");
        assert_eq!(nodes.len(), 1);
        assert_eq!(first_element(&nodes).tag, "p");
    }

    #[test]
    fn find_descends_depth_first() {
        let nodes = parse("<table><tr><td>a</td></tr></table>");
        let table = first_element(&nodes);
        assert!(table.find("td").is_some());
        assert!(table.find("th").is_none());
    }

    #[test]
    fn truncated_tag_at_eof() {
        let nodes = parse("<p>ok</p><div");
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let nodes = parse("<div>\n  \t<p>x</p>  </div>");
        let div = first_element(&nodes);
        assert_eq!(div.children.len(), 1);
    }
}
