//! # fonduer-parser
//!
//! Document parsing front end for Fonduer: converts raw HTML/XML markup into
//! the unified multimodal data model and attaches visual attributes via a
//! deterministic layout engine (the stand-in for the paper's Poppler + PDF
//! printer conversion pipeline, §3.1).
//!
//! * [`markup`] — tolerant HTML/XML tree parser;
//! * [`ingest`] — markup tree → [`fonduer_datamodel::Document`], including
//!   table grids with spanning cells and structural attributes;
//! * [`layout`] — renders documents to pages/bounding boxes, with optional
//!   simulated conversion noise;
//! * [`align`] — word-sequence alignment across converted formats.
//!
//! ```
//! use fonduer_parser::{parse_document, ParseOptions};
//! use fonduer_datamodel::DocFormat;
//!
//! let html = "<h1>SMBT3904</h1><table><tr><td>IC</td><td>200</td></tr></table>";
//! let doc = parse_document("sheet", html, DocFormat::Pdf, &ParseOptions::default());
//! assert_eq!(doc.tables.len(), 1);
//! assert!(doc.sentences[0].visual.is_some()); // PDF docs get a rendering
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod ingest;
pub mod layout;
pub mod markup;

pub use align::{align_words, Alignment};
pub use ingest::ingest;
pub use layout::{layout, LayoutOptions};
pub use markup::{decode_entities, parse, Element, Node};

use fonduer_datamodel::{Corpus, DocFormat, Document};
use fonduer_observe as observe;

/// Options for end-to-end document parsing.
#[derive(Debug, Clone, Default)]
pub struct ParseOptions {
    /// Layout options used when the format has a visual modality.
    pub layout: LayoutOptions,
}

/// Parse markup and, for formats with a visual modality, render it: the
/// complete "KBC initialization" document path (paper Phase 1).
pub fn parse_document(
    name: &str,
    markup_text: &str,
    format: DocFormat,
    opts: &ParseOptions,
) -> Document {
    let _span = observe::span("parse_doc");
    let start = std::time::Instant::now();
    let mut doc = ingest(name, markup_text, format);
    layout(&mut doc, &opts.layout);
    observe::hist_record("parse.doc_us", start.elapsed().as_micros() as u64);
    observe::counter("parser.documents", 1);
    observe::counter("parser.sentences", doc.sentences.len() as u64);
    observe::counter("parser.tables", doc.tables.len() as u64);
    doc
}

/// An unparsed input document: what corpus generators and loaders hand to
/// [`parse_corpus_parallel`].
#[derive(Debug, Clone)]
pub struct RawDoc {
    /// Document name.
    pub name: String,
    /// Raw HTML/XML markup.
    pub markup: String,
    /// Source format (decides whether a visual rendering is attached).
    pub format: DocFormat,
}

impl RawDoc {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, markup: impl Into<String>, format: DocFormat) -> Self {
        Self {
            name: name.into(),
            markup: markup.into(),
            format,
        }
    }
}

/// Parse a whole corpus across `n_threads` workers on the shared
/// [`fonduer_par::Pool`] — the paper's per-document parallel KBC
/// initialization phase. Documents are parsed independently and inserted in
/// input order, so document ids (and the resulting [`Corpus`]) are identical
/// to a sequential `parse_document` loop at every thread count.
/// `n_threads = 0` means auto-detect; `FONDUER_THREADS` overrides either.
pub fn parse_corpus_parallel(
    corpus_name: &str,
    raw: &[RawDoc],
    opts: &ParseOptions,
    n_threads: usize,
) -> Corpus {
    let _span = observe::span("parse_corpus");
    let pool = fonduer_par::Pool::new(n_threads);
    let docs = pool.par_map(raw, |r| parse_document(&r.name, &r.markup, r.format, opts));
    let mut corpus = Corpus::new(corpus_name);
    for doc in docs {
        corpus.add(doc);
    }
    corpus
}
