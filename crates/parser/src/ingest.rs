//! Ingestion: markup tree → Fonduer data model.
//!
//! This is the structural half of Fonduer's document preprocessing (paper
//! §3.1): "we extract all the words in their original order. For structural
//! and tabular information, we use tools such as Poppler to convert an input
//! file into HTML format". The synthetic corpora and any user-supplied HTML
//! or XML enter the data model through this module; visual attributes are
//! attached afterwards by the [`crate::layout`] engine.

use crate::markup::{parse, Element, Node};
use fonduer_datamodel::{
    ContextRef, DocFormat, Document, DocumentBuilder, SectionId, Structural, TableId,
};
use fonduer_nlp::{preprocess_into, NlpScratch};
use std::sync::Arc;

/// Tags treated as inline formatting: their text folds into the enclosing
/// block.
const INLINE_TAGS: &[&str] = &[
    "b", "i", "em", "strong", "u", "sub", "sup", "a", "code", "small", "font", "span", "br",
    "bullet",
];

/// Tags that start a new [`fonduer_datamodel::Section`].
const SECTION_TAGS: &[&str] = &["section", "sec"];

/// Tags treated as transparent containers (recursed into).
const CONTAINER_TAGS: &[&str] = &[
    "html", "body", "article", "main", "ul", "ol", "dl", "abstract", "front", "back", "div", "head",
];

fn is_inline(tag: &str) -> bool {
    INLINE_TAGS.contains(&tag)
}

fn has_block_children(e: &Element) -> bool {
    e.children.iter().any(|n| match n {
        Node::Element(c) => !is_inline(&c.tag),
        Node::Text(_) => false,
    })
}

/// Parse `markup` (HTML or XML) and ingest it into a [`Document`].
pub fn ingest(name: &str, markup: &str, format: DocFormat) -> Document {
    let nodes = parse(markup);
    let mut ing = Ingestor {
        b: DocumentBuilder::new(name, format),
        current_section: None,
        scratch: NlpScratch::new(),
    };
    let mut stack = AncestorStack::default();
    ing.walk_children(&nodes, &mut stack);
    ing.b.finish()
}

/// Tracks open ancestor elements for structural attribute extraction.
///
/// The `Arc` snapshots of the three vectors are built lazily and cached
/// until the next push/pop, so every element emitted under the same
/// open-ancestor state (all the cells of a table, say) shares one set of
/// allocations instead of deep-cloning three string vectors each.
#[derive(Default)]
struct AncestorStack {
    tags: Vec<String>,
    classes: Vec<String>,
    ids: Vec<String>,
    snapshot: Option<AncestorSnapshot>,
}

/// One shared copy of the ancestor state, cloned into each `Structural` as
/// three `Arc` bumps.
#[derive(Clone)]
struct AncestorSnapshot {
    tags: Arc<Vec<String>>,
    classes: Arc<Vec<String>>,
    ids: Arc<Vec<String>>,
}

impl AncestorStack {
    fn push(&mut self, e: &Element) {
        self.tags.push(e.tag.clone());
        if let Some(c) = e.attr("class") {
            self.classes.push(c.to_string());
        }
        if let Some(i) = e.attr("id") {
            self.ids.push(i.to_string());
        }
        self.snapshot = None;
    }

    fn pop(&mut self, e: &Element) {
        self.tags.pop();
        if e.attr("class").is_some() {
            self.classes.pop();
        }
        if e.attr("id").is_some() {
            self.ids.pop();
        }
        self.snapshot = None;
    }

    /// Current ancestor state as shared vectors (cached until mutation).
    fn snapshot(&mut self) -> &AncestorSnapshot {
        if self.snapshot.is_none() {
            self.snapshot = Some(AncestorSnapshot {
                tags: Arc::new(self.tags.clone()),
                classes: Arc::new(self.classes.clone()),
                ids: Arc::new(self.ids.clone()),
            });
        }
        self.snapshot.as_ref().expect("just populated")
    }
}

struct Ingestor {
    b: DocumentBuilder,
    current_section: Option<SectionId>,
    scratch: NlpScratch,
}

/// Sibling context for one element within its parent's children. Borrowed
/// from the markup tree; the owned copies are made once, inside
/// [`Ingestor::structural`].
struct SiblingInfo<'a> {
    parent_tag: &'a str,
    prev: Option<&'a str>,
    next: Option<&'a str>,
    pos: u32,
}

impl Ingestor {
    fn section(&mut self) -> SectionId {
        match self.current_section {
            Some(s) => s,
            None => {
                let s = self.b.section();
                self.current_section = Some(s);
                s
            }
        }
    }

    // One `Arc<Structural>` per markup element; every sentence emitted from
    // the element's text shares it by refcount.
    fn structural(
        &mut self,
        e: &Element,
        sib: &SiblingInfo<'_>,
        stack: &mut AncestorStack,
    ) -> Arc<Structural> {
        let snap = stack.snapshot().clone();
        Arc::new(Structural {
            tag: e.tag.clone(),
            attrs: e.attrs.clone(),
            parent_tag: sib.parent_tag.to_string(),
            prev_sibling_tag: sib.prev.map(str::to_string),
            next_sibling_tag: sib.next.map(str::to_string),
            node_pos: sib.pos,
            ancestor_tags: snap.tags,
            ancestor_classes: snap.classes,
            ancestor_ids: snap.ids,
        })
    }

    fn walk_children(&mut self, nodes: &[Node], stack: &mut AncestorStack) {
        // Pre-compute element sibling tags for structural attributes.
        let elems: Vec<(usize, &Element)> = nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Node::Element(e) => Some((i, e)),
                _ => None,
            })
            .collect();
        // Cloned once per container (the stack is mutated during recursion,
        // so a borrow would not survive the loop).
        let parent_tag = stack.tags.last().cloned().unwrap_or_default();
        for (ei, &(i, e)) in elems.iter().enumerate() {
            let sib = SiblingInfo {
                parent_tag: &parent_tag,
                prev: ei.checked_sub(1).map(|p| elems[p].1.tag.as_str()),
                next: elems.get(ei + 1).map(|n| n.1.tag.as_str()),
                pos: ei as u32,
            };
            let _ = i;
            self.walk_element(e, &sib, stack);
        }
        // Direct text under a container becomes its own text block.
        let direct_text: String = nodes
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join(" ");
        if !direct_text.trim().is_empty() {
            let sib = SiblingInfo {
                parent_tag: &parent_tag,
                prev: None,
                next: None,
                pos: 0,
            };
            let pseudo = Element::new(parent_tag.clone());
            let structural = self.structural(&pseudo, &sib, stack);
            self.emit_text_block(&direct_text, structural);
        }
    }

    fn walk_element(&mut self, e: &Element, sib: &SiblingInfo<'_>, stack: &mut AncestorStack) {
        let tag = e.tag.as_str();
        if SECTION_TAGS.contains(&tag) {
            let s = self.b.section();
            self.current_section = Some(s);
            stack.push(e);
            self.walk_children(&e.children, stack);
            stack.pop(e);
            // Content after this section starts a fresh implicit section.
            self.current_section = None;
            return;
        }
        if tag == "table" {
            stack.push(e);
            self.ingest_table(e, stack);
            stack.pop(e);
            return;
        }
        if tag == "img" {
            let sec = self.section();
            self.b.figure(sec, e.attr("src").unwrap_or("").to_string());
            return;
        }
        if tag == "figure" || tag == "fig" {
            let sec = self.section();
            let src = e
                .find("img")
                .and_then(|i| i.attr("src"))
                .unwrap_or("")
                .to_string();
            let fid = self.b.figure(sec, src);
            if let Some(cap) = e.find("figcaption").or_else(|| e.find("caption")) {
                let cid = self.b.figure_caption(fid);
                stack.push(e);
                let structural = self.structural(cap, sib, stack);
                self.emit_paragraphs(ContextRef::Caption(cid), &cap.text_content(), structural);
                stack.pop(e);
            }
            return;
        }
        if CONTAINER_TAGS.contains(&tag) || has_block_children(e) {
            stack.push(e);
            self.walk_children(&e.children, stack);
            stack.pop(e);
            return;
        }
        // Text leaf (p, h1..h6, li, title, td outside tables, custom XML
        // tags...): its inline-flattened text becomes a text block.
        let text = e.text_content();
        if text.trim().is_empty() {
            return;
        }
        let structural = self.structural(e, sib, stack);
        self.emit_text_block(&text, structural);
    }

    fn emit_text_block(&mut self, text: &str, structural: Arc<Structural>) {
        let sec = self.section();
        let tb = self.b.text_block(sec);
        self.emit_paragraphs(ContextRef::TextBlock(tb), text, structural);
    }

    fn emit_paragraphs(&mut self, parent: ContextRef, text: &str, structural: Arc<Structural>) {
        let para = self.b.paragraph(parent);
        // Fused pass: sentences, token spans, and interned tags are written
        // straight into the builder's arena — no intermediate SentenceData.
        preprocess_into(&mut self.b, para, text, &structural, &mut self.scratch);
    }

    /// Build a table from `<tr>`/`<td>`/`<th>` children with rowspan/colspan
    /// handling via a standard grid-occupancy algorithm.
    fn ingest_table(&mut self, table_elem: &Element, stack: &mut AncestorStack) {
        // Collect rows from any depth-1 grouping (thead/tbody/tfoot or bare).
        let mut row_elems: Vec<&Element> = Vec::new();
        collect_rows(table_elem, &mut row_elems);

        // Placement pass: compute each cell's grid rectangle.
        struct Placement<'a> {
            elem: &'a Element,
            r0: u32,
            r1: u32,
            c0: u32,
            c1: u32,
        }
        let mut placements: Vec<Placement> = Vec::new();
        // occupied[r] = set of columns taken in row r (dynamic growth).
        let mut occupied: Vec<Vec<bool>> = Vec::new();
        let mut n_cols = 0u32;
        for (r, row) in row_elems.iter().enumerate() {
            if occupied.len() <= r {
                occupied.resize(r + 1, Vec::new());
            }
            let mut col = 0usize;
            for cell in row.children.iter().filter_map(|n| match n {
                Node::Element(e) if e.tag == "td" || e.tag == "th" || e.tag == "cell" => Some(e),
                _ => None,
            }) {
                // Find the first free column slot in row r.
                while occupied[r].get(col).copied().unwrap_or(false) {
                    col += 1;
                }
                let rowspan: usize = cell
                    .attr("rowspan")
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or(1);
                let colspan: usize = cell
                    .attr("colspan")
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or(1);
                for rr in r..r + rowspan {
                    if occupied.len() <= rr {
                        occupied.resize(rr + 1, Vec::new());
                    }
                    if occupied[rr].len() < col + colspan {
                        occupied[rr].resize(col + colspan, false);
                    }
                    occupied[rr][col..col + colspan].fill(true);
                }
                placements.push(Placement {
                    elem: cell,
                    r0: r as u32,
                    r1: (r + rowspan - 1) as u32,
                    c0: col as u32,
                    c1: (col + colspan - 1) as u32,
                });
                n_cols = n_cols.max((col + colspan) as u32);
                col += colspan;
            }
        }
        let n_rows = occupied.len().max(row_elems.len()) as u32;
        if n_rows == 0 || n_cols == 0 {
            return; // Empty table: nothing to ingest.
        }
        let sec = self.section();
        let tid: TableId = self.b.table(sec, n_rows, n_cols);
        // Caption.
        if let Some(cap) = table_elem.children_with_tag("caption").next() {
            let cid = self.b.table_caption(tid);
            let sib = SiblingInfo {
                parent_tag: "table",
                prev: None,
                next: None,
                pos: 0,
            };
            let structural = self.structural(cap, &sib, stack);
            self.emit_paragraphs(ContextRef::Caption(cid), &cap.text_content(), structural);
        }
        // Cells.
        for (pi, p) in placements.iter().enumerate() {
            let cell = self.b.cell(tid, p.r0, p.r1, p.c0, p.c1);
            let text = p.elem.text_content();
            if text.trim().is_empty() {
                continue;
            }
            let sib = SiblingInfo {
                parent_tag: "tr",
                prev: pi.checked_sub(1).map(|_| "td"),
                next: Some("td"),
                pos: p.c0,
            };
            let structural = self.structural(p.elem, &sib, stack);
            self.emit_paragraphs(ContextRef::Cell(cell), &text, structural);
        }
    }
}

fn collect_rows<'a>(e: &'a Element, out: &mut Vec<&'a Element>) {
    for n in &e.children {
        if let Node::Element(c) = n {
            if c.tag == "tr" || c.tag == "row" {
                out.push(c);
            } else if matches!(c.tag.as_str(), "thead" | "tbody" | "tfoot") {
                collect_rows(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fonduer_datamodel::assert_valid;

    const DATASHEET: &str = r#"
<html><body>
  <h1 class="title">SMBT3904...MMBT3904</h1>
  <p>NPN Silicon Switching Transistors.</p>
  <table>
    <caption>Maximum Ratings</caption>
    <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
    <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
    <tr><td rowspan="2">Total power dissipation</td><td>P1</td><td>330</td><td rowspan="2">mW</td></tr>
    <tr><td>P2</td><td>250</td></tr>
  </table>
</body></html>"#;

    #[test]
    fn ingests_datasheet_structure() {
        let d = ingest("sheet", DATASHEET, DocFormat::Pdf);
        assert_valid(&d);
        assert_eq!(d.tables.len(), 1);
        let t = &d.tables[0];
        assert_eq!(t.n_rows, 4);
        assert_eq!(t.n_cols, 4);
        assert!(t.caption.is_some());
        // 4 header cells + 4 + 4 (2 spanning) + 2 = 14 cells.
        assert_eq!(t.cells.len(), 14);
        assert_eq!(d.text_blocks.len(), 2);
    }

    #[test]
    fn rowspan_grid_placement() {
        let d = ingest("sheet", DATASHEET, DocFormat::Pdf);
        // The rowspan=2 "Total power dissipation" cell covers rows 2..=3 col 0;
        // the following row's "P2" lands in column 1.
        let spanning: Vec<_> = d.cells.iter().filter(|c| c.row_span() == 2).collect();
        assert_eq!(spanning.len(), 2);
        assert!(spanning.iter().any(|c| c.col_start == 0));
        assert!(spanning.iter().any(|c| c.col_start == 3));
        let p2_cell = d
            .cells
            .iter()
            .find(|c| {
                c.paragraphs.iter().any(|&p| {
                    d.paragraphs[p.index()]
                        .sentences
                        .iter()
                        .any(|&s| d.sentences[s.index()].text(&d).contains("P2"))
                })
            })
            .unwrap();
        assert_eq!((p2_cell.row_start, p2_cell.col_start), (3, 1));
    }

    #[test]
    fn structural_attributes_recorded() {
        let d = ingest("sheet", DATASHEET, DocFormat::Pdf);
        let h1_sent = d
            .sentences
            .iter()
            .find(|s| s.structural.tag == "h1")
            .expect("h1 sentence");
        assert_eq!(h1_sent.structural.attr("class"), Some("title"));
        assert!(h1_sent
            .structural
            .ancestor_tags
            .contains(&"body".to_string()));
        assert_eq!(h1_sent.structural.parent_tag, "body");
        assert_eq!(h1_sent.structural.next_sibling_tag.as_deref(), Some("p"));
        let td_sent = d
            .sentences
            .iter()
            .find(|s| s.structural.tag == "td")
            .expect("td sentence");
        assert!(td_sent
            .structural
            .ancestor_tags
            .contains(&"table".to_string()));
    }

    #[test]
    fn sections_split_content() {
        let html = "<section><p>first</p></section><section><p>second</p></section><p>tail</p>";
        let d = ingest("s", html, DocFormat::Html);
        assert_valid(&d);
        assert_eq!(d.sections.len(), 3);
    }

    #[test]
    fn xml_with_custom_tags() {
        let xml = r#"<?xml version="1.0"?>
<article>
  <title>GWAS of height</title>
  <abstract><p>We study rs12345 association.</p></abstract>
  <table><tr><td>rs12345</td><td>1e-8</td></tr></table>
</article>"#;
        let d = ingest("g", xml, DocFormat::Xml);
        assert_valid(&d);
        assert_eq!(d.tables.len(), 1);
        assert!(d
            .sentences
            .iter()
            .any(|s| s.structural.tag == "title" && s.text(&d).contains("GWAS")));
        // XML: no visual modality anywhere.
        assert!(d.sentences.iter().all(|s| s.visual.is_none()));
    }

    #[test]
    fn figure_with_caption() {
        let html = r#"<figure><img src="pic.png"/><figcaption>A photo.</figcaption></figure>"#;
        let d = ingest("f", html, DocFormat::Html);
        assert_valid(&d);
        assert_eq!(d.figures.len(), 1);
        assert_eq!(d.figures[0].src, "pic.png");
        assert!(d.figures[0].caption.is_some());
    }

    #[test]
    fn empty_table_is_skipped() {
        let d = ingest("e", "<table></table><p>x</p>", DocFormat::Html);
        assert_valid(&d);
        assert!(d.tables.is_empty());
        assert_eq!(d.text_blocks.len(), 1);
    }

    #[test]
    fn nested_lists_flatten_to_text_blocks() {
        let d = ingest(
            "l",
            "<ul><li>High DC current gain</li><li>Low voltage</li></ul>",
            DocFormat::Html,
        );
        assert_valid(&d);
        assert_eq!(d.text_blocks.len(), 2);
        assert_eq!(d.sentences[0].structural.tag, "li");
    }
}
