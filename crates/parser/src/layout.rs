//! Visual layout engine.
//!
//! Stand-in for the paper's "PDF printer" conversion (§3.1): renders a
//! parsed document onto US-Letter pages, assigning every word a page number,
//! bounding box, font, size, and boldness. The engine is deterministic, so
//! the same document always renders identically; an optional jitter knob
//! simulates the conversion noise real PDF tooling introduces, which
//! Fonduer is designed to recover from via redundant modalities.

use fonduer_datamodel::{BBox, ContextRef, Document, ParagraphId, SentenceId, TableId, WordVisual};
use fonduer_nlp::fnv1a;

/// Page geometry and styling knobs for the layout engine.
#[derive(Debug, Clone)]
pub struct LayoutOptions {
    /// Page width in points (default 612, US Letter).
    pub page_width: f32,
    /// Page height in points (default 792).
    pub page_height: f32,
    /// Uniform page margin in points.
    pub margin: f32,
    /// Maximum absolute coordinate jitter in points (simulated conversion
    /// noise); 0.0 disables it.
    pub jitter: f32,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        Self {
            page_width: 612.0,
            page_height: 792.0,
            margin: 54.0,
            jitter: 0.0,
        }
    }
}

/// Font style derived from a sentence's structural tag.
#[derive(Debug, Clone, Copy)]
struct Style {
    size: f32,
    bold: bool,
    font: &'static str,
}

fn style_for_tag(tag: &str) -> Style {
    match tag {
        "h1" | "title" => Style {
            size: 16.0,
            bold: true,
            font: "Arial",
        },
        "h2" => Style {
            size: 14.0,
            bold: true,
            font: "Arial",
        },
        "h3" | "h4" | "caption" | "figcaption" => Style {
            size: 12.0,
            bold: true,
            font: "Arial",
        },
        "th" => Style {
            size: 10.0,
            bold: true,
            font: "Arial",
        },
        "code" | "pre" => Style {
            size: 9.0,
            bold: false,
            font: "Courier",
        },
        _ => Style {
            size: 10.0,
            bold: false,
            font: "Arial",
        },
    }
}

/// Approximate advance width of a word at a font size.
fn word_width(word: &str, size: f32) -> f32 {
    (word.chars().count().max(1) as f32) * size * 0.55
}

struct Cursor {
    page: u16,
    y: f32,
}

struct Engine<'d> {
    doc: &'d mut Document,
    opts: LayoutOptions,
    cur: Cursor,
}

/// Render `doc`, attaching [`WordVisual`] attributes to every sentence.
///
/// Documents whose format lacks a visual modality (XML) are left untouched.
pub fn layout(doc: &mut Document, opts: &LayoutOptions) {
    if !doc.format.has_visual() {
        return;
    }
    let mut engine = Engine {
        doc,
        opts: opts.clone(),
        cur: Cursor {
            page: 1,
            y: opts.margin,
        },
    };
    for si in 0..engine.doc.sections.len() {
        let children = engine.doc.sections[si].children.clone();
        for child in children {
            match child {
                ContextRef::TextBlock(id) => {
                    let paras = engine.doc.text_blocks[id.index()].paragraphs.clone();
                    for p in paras {
                        engine.layout_paragraph(p);
                    }
                    engine.cur.y += 6.0; // block spacing
                }
                ContextRef::Table(id) => engine.layout_table(id),
                ContextRef::Figure(id) => {
                    // Reserve space for the image, then lay out the caption.
                    engine.advance(120.0);
                    if let Some(cap) = engine.doc.figures[id.index()].caption {
                        let paras = engine.doc.captions[cap.index()].paragraphs.clone();
                        for p in paras {
                            engine.layout_paragraph(p);
                        }
                    }
                }
                _ => {}
            }
        }
        engine.cur.y += 12.0; // section spacing
    }
}

impl Engine<'_> {
    fn usable_width(&self) -> f32 {
        self.opts.page_width - 2.0 * self.opts.margin
    }

    fn bottom(&self) -> f32 {
        self.opts.page_height - self.opts.margin
    }

    /// Move the cursor down `h` points, breaking to a new page if needed.
    fn advance(&mut self, h: f32) {
        if self.cur.y + h > self.bottom() {
            self.cur.page += 1;
            self.cur.y = self.opts.margin;
        }
        self.cur.y += h;
    }

    fn jitter_for(&self, word: &str, axis: u64) -> f32 {
        if self.opts.jitter == 0.0 {
            return 0.0;
        }
        let h = fnv1a(word.as_bytes()).wrapping_add(axis.wrapping_mul(0x9e3779b97f4a7c15));
        let unit = ((h % 2000) as f32 / 1000.0) - 1.0; // [-1, 1)
        unit * self.opts.jitter
    }

    /// Lay out one paragraph across the full usable width.
    fn layout_paragraph(&mut self, p: ParagraphId) {
        let sents = self.doc.paragraphs[p.index()].sentences.clone();
        for s in sents {
            let left = self.opts.margin;
            let right = self.opts.margin + self.usable_width();
            self.layout_sentence(s, left, right);
        }
    }

    /// Lay out one sentence between `left` and `right`, flowing lines from
    /// the current cursor; updates the cursor past the laid-out lines.
    fn layout_sentence(&mut self, s: SentenceId, left: f32, right: f32) {
        let style = style_for_tag(&self.doc.sentences[s.index()].structural.tag);
        let line_h = style.size * 1.3;
        let n = self.doc.sentences[s.index()].len();
        let mut vis = Vec::with_capacity(n);
        let mut x = left;
        // Ensure the first line fits on this page.
        if self.cur.y + line_h > self.bottom() {
            self.cur.page += 1;
            self.cur.y = self.opts.margin;
        }
        let mut y = self.cur.y;
        for i in 0..n {
            // Words are read straight out of the document arena; no clone.
            let w = self.doc.sentences[s.index()].word(self.doc, i);
            let ww = word_width(w, style.size);
            if x + ww > right && x > left {
                x = left;
                y += line_h;
                if y + line_h > self.bottom() {
                    self.cur.page += 1;
                    y = self.opts.margin;
                }
            }
            let jx = self.jitter_for(w, 1);
            let jy = self.jitter_for(w, 2);
            vis.push(WordVisual {
                page: self.cur.page,
                bbox: BBox::new(x + jx, y + jy, x + jx + ww, y + jy + style.size),
                font: style.font.into(),
                font_size: style.size,
                bold: style.bold,
            });
            x += ww + style.size * 0.3;
        }
        self.cur.y = y + line_h;
        self.doc.sentences[s.index()].visual = Some(vis);
    }

    /// Lay out a table: caption first, then rows top-to-bottom with equal
    /// column widths. Spanning cells occupy the union of their column slots.
    fn layout_table(&mut self, t: TableId) {
        if let Some(cap) = self.doc.tables[t.index()].caption {
            let paras = self.doc.captions[cap.index()].paragraphs.clone();
            for p in paras {
                self.layout_paragraph(p);
            }
        }
        let (n_rows, n_cols) = {
            let tbl = &self.doc.tables[t.index()];
            (tbl.n_rows, tbl.n_cols)
        };
        if n_rows == 0 || n_cols == 0 {
            return;
        }
        let col_w = self.usable_width() / n_cols as f32;
        let row_h = 14.0;
        let cells = self.doc.tables[t.index()].cells.clone();
        // Row layout: all cells starting at row r share that row's y origin.
        // Keep the whole table row-contiguous; break pages between rows.
        let mut row_y = vec![0.0f32; n_rows as usize];
        let mut row_page = vec![0u16; n_rows as usize];
        for r in 0..n_rows {
            if self.cur.y + row_h > self.bottom() {
                self.cur.page += 1;
                self.cur.y = self.opts.margin;
            }
            row_y[r as usize] = self.cur.y;
            row_page[r as usize] = self.cur.page;
            self.cur.y += row_h;
        }
        for cid in cells {
            let cell = self.doc.cells[cid.index()].clone();
            let x0 = self.opts.margin + cell.col_start as f32 * col_w + 2.0;
            let x1 = self.opts.margin + (cell.col_end + 1) as f32 * col_w - 2.0;
            let y0 = row_y[cell.row_start as usize];
            let page = row_page[cell.row_start as usize];
            // Lay the cell's words inside its rectangle without moving the
            // global cursor (save/restore).
            let saved = (self.cur.page, self.cur.y);
            self.cur.page = page;
            self.cur.y = y0 + 2.0;
            for p in &cell.paragraphs {
                let sents = self.doc.paragraphs[p.index()].sentences.clone();
                for s in sents {
                    self.layout_sentence(s, x0, x1);
                }
            }
            self.cur.page = saved.0;
            self.cur.y = saved.1;
        }
        self.cur.y += 8.0; // table spacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest;
    use fonduer_datamodel::DocFormat;

    const HTML: &str = r#"
<h1>SMBT3904</h1>
<p>NPN Silicon Switching Transistors with quite a lot of additional words included here so that the rendered line must certainly wrap onto a second visual line of the page.</p>
<table>
 <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
 <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
</table>"#;

    fn laid_out() -> Document {
        let mut d = ingest("t", HTML, DocFormat::Pdf);
        layout(&mut d, &LayoutOptions::default());
        d
    }

    #[test]
    fn every_word_gets_visual_attrs() {
        let d = laid_out();
        for s in &d.sentences {
            let v = s.visual.as_ref().expect("visual attached");
            assert_eq!(v.len(), s.len());
        }
    }

    #[test]
    fn headers_are_large_and_bold() {
        let d = laid_out();
        let h1 = d
            .sentences
            .iter()
            .find(|s| s.structural.tag == "h1")
            .unwrap();
        let v = &h1.visual.as_ref().unwrap()[0];
        assert!(v.bold);
        assert_eq!(v.font_size, 16.0);
        let p = d
            .sentences
            .iter()
            .find(|s| s.structural.tag == "p")
            .unwrap();
        assert!(!p.visual.as_ref().unwrap()[0].bold);
    }

    #[test]
    fn table_row_cells_are_y_aligned() {
        let d = laid_out();
        // "200" and "mA" are in the same table row → same y origin.
        let find = |w: &str| -> WordVisual {
            for s in &d.sentences {
                if let Some(i) = (0..s.len()).find(|&i| s.word(&d, i) == w) {
                    return s.visual.as_ref().unwrap()[i].clone();
                }
            }
            panic!("word {w} not found");
        };
        let v200 = find("200");
        let vma = find("mA");
        assert_eq!(v200.page, vma.page);
        assert!((v200.bbox.y0 - vma.bbox.y0).abs() < 0.1);
        // Different columns → different x.
        assert!(vma.bbox.x0 > v200.bbox.x0);
        // Column header "Value" is vertically aligned with "200".
        let vval = find("Value");
        assert!(vval.bbox.x_overlaps(&v200.bbox));
        assert!(vval.bbox.y0 < v200.bbox.y0);
    }

    #[test]
    fn long_text_wraps_lines() {
        let d = laid_out();
        let p = d
            .sentences
            .iter()
            .find(|s| s.structural.tag == "p")
            .unwrap();
        let v = p.visual.as_ref().unwrap();
        let first_y = v[0].bbox.y0;
        assert!(
            v.iter().any(|w| w.bbox.y0 > first_y + 1.0),
            "expected at least one wrapped line"
        );
    }

    #[test]
    fn page_breaks_occur() {
        // 200 paragraphs cannot fit on one page.
        let mut html = String::new();
        for i in 0..200 {
            html.push_str(&format!("<p>Paragraph number {i} with several words.</p>"));
        }
        let mut d = ingest("long", &html, DocFormat::Pdf);
        layout(&mut d, &LayoutOptions::default());
        assert!(d.page_count() > 1);
        // abs order implies non-decreasing pages.
        let pages: Vec<u16> = d.sentences.iter().map(|s| s.page().unwrap()).collect();
        assert!(pages.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn xml_documents_are_skipped() {
        let mut d = ingest("x", "<article><p>text</p></article>", DocFormat::Xml);
        layout(&mut d, &LayoutOptions::default());
        assert!(d.sentences.iter().all(|s| s.visual.is_none()));
    }

    #[test]
    fn jitter_perturbs_but_is_deterministic() {
        let mk = |j: f32| {
            let mut d = ingest("t", HTML, DocFormat::Pdf);
            layout(
                &mut d,
                &LayoutOptions {
                    jitter: j,
                    ..Default::default()
                },
            );
            d
        };
        let clean = mk(0.0);
        let noisy1 = mk(2.0);
        let noisy2 = mk(2.0);
        let get = |d: &Document| d.sentences[0].visual.as_ref().unwrap()[0].bbox;
        assert_ne!(get(&clean), get(&noisy1));
        assert_eq!(get(&noisy1), get(&noisy2));
        // Jitter is bounded.
        assert!((get(&clean).x0 - get(&noisy1).x0).abs() <= 2.0);
    }
}
