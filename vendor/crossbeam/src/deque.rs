//! Work-stealing deques with the `crossbeam-deque` call shape.
//!
//! A [`Worker`] is the owner's end of a queue; [`Stealer`]s are cloneable
//! handles other threads use to take work from the opposite end. The real
//! crossbeam implementation is a lock-free Chase–Lev deque; this hermetic
//! stand-in keeps the same API and semantics (FIFO worker, stealers take
//! the oldest task) over a short-critical-section mutex, which is plenty
//! for the document-granularity tasks `fonduer-par` schedules.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt (crossbeam's three-state shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// The owner's end of a work-stealing queue.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A handle for taking tasks from another thread's [`Worker`].
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_fifo()
    }
}

impl<T> Worker<T> {
    /// A new FIFO queue: the owner pushes to the back and pops from the
    /// front, so tasks run in submission order; stealers also take from
    /// the front (oldest first).
    pub fn new_fifo() -> Self {
        Self {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Pop the next task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// A new stealer handle for this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempt to steal the oldest task from the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
            Err(std::sync::TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    /// Whether the queue is currently empty (best effort).
    pub fn is_empty(&self) -> bool {
        match self.inner.try_lock() {
            Ok(q) => q.is_empty(),
            Err(_) => false,
        }
    }

    /// Number of queued tasks. Crossbeam's real `Stealer` exposes `len`
    /// the same way; `fonduer-par` uses it to sample queue depth at steal
    /// points.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_for_owner() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(10);
        w.push(20);
        assert_eq!(s.steal(), Steal::Success(10));
        assert_eq!(w.pop(), Some(20));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn cross_thread_stealing_drains_everything() {
        let w = Worker::new_fifo();
        for i in 0..1000u64 {
            w.push(i);
        }
        let stolen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Success(t) => got.push(t),
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all = stolen;
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
