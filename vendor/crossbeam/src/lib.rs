//! Hermetic in-tree stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::scope` for structured fork–join
//! parallelism and [`deque`] for the work-stealing queues behind
//! `fonduer-par`. Since Rust 1.63 the standard library provides scoped
//! threads as `std::thread::scope`, so the scope half is a thin adapter
//! that preserves crossbeam's call shape (`scope(|s| ...)` returning a
//! `Result`, spawn closures receiving the scope).
//!
//! Behavioral difference: if a worker panics, `std::thread::scope`
//! propagates the panic at the end of the scope instead of returning `Err`,
//! so the `Err` arm of the returned `Result` is never taken. Callers that
//! `.expect()` the result (as this workspace does) observe identical
//! behavior either way: a worker panic aborts the calling thread with the
//! worker's payload.

#![warn(missing_docs)]

pub mod deque;

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to spawned workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped worker thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker and return its result (Err on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. The closure receives the scope so
    /// workers can spawn further workers (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// workers are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let mut results = Vec::new();
        scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        })
        .unwrap();
        assert_eq!(results, vec![3, 7, 11]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let out = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
