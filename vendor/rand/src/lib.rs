//! Hermetic in-tree stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be downloaded. This crate re-implements the (small) slice
//! of the `rand` 0.8 API the workspace actually uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool` — on top of a xoshiro256++ generator seeded
//! via SplitMix64.
//!
//! Determinism contract: the stream is stable across runs and platforms
//! (pure integer arithmetic, no platform entropy), which is all the
//! synthetic-corpus generators and model initializers require. The stream
//! differs from upstream `rand`'s ChaCha12, so absolute generated values
//! are not bit-compatible with runs that used the real crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (API-compatible module path: `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding scheme for xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is in range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + <$t as Standard>::draw(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Uniform value of an inferable type (`f32`/`f64` in `[0, 1)`,
    /// integers over their full width, fair `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p}");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5..=7usize);
            assert!((5..=7).contains(&w));
            let f = r.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }
}
