//! Hermetic in-tree stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's weight-persistence code uses:
//! [`BytesMut`] as a growable little-endian writer, [`Bytes`] as an
//! immutable byte container, [`Buf`] for cursor-style reads from `&[u8]`,
//! and [`BufMut`] for writes. Backed by plain `Vec<u8>` — no refcounted
//! slices, which the workspace does not need.

#![warn(missing_docs)]

use std::ops::Deref;

/// Immutable contiguous byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer for serialization.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style reader over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Writer of primitive values into a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(-2.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut r: &[u8] = b"ab";
        let mut dst = [0u8; 3];
        r.copy_to_slice(&mut dst);
    }
}
