//! Hermetic in-tree stand-in for the `serde` crate.
//!
//! Supplies the `Serialize`/`Deserialize` names the workspace imports — as
//! empty marker traits plus the no-op derives from the sibling
//! `serde_derive` stub. The workspace annotates types for a future
//! serialization backend but performs no serialization today, so nothing
//! more is needed to compile offline. Replace with the real serde when a
//! backend (serde_json, bincode, ...) joins the dependency tree.

#![warn(missing_docs)]

/// Marker for serializable types (no methods in this stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no methods in this stand-in).
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
