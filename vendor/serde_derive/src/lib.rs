//! Hermetic in-tree stand-in for `serde_derive`.
//!
//! The workspace tags its data-model types with
//! `#[derive(Serialize, Deserialize)]` but never actually serializes them
//! (there is no serde_json or bincode in the dependency tree, and the build
//! environment is fully offline). These no-op derives keep the annotations
//! compiling — they emit no code, which is exactly the amount of
//! serialization the workspace performs. Swap back to the real crates when
//! a serialization backend is introduced.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]` helper
/// attributes, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]` helper
/// attributes, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
