//! Hermetic in-tree stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly), implemented over
//! the standard-library primitives. Poisoning is converted to "keep going
//! with the inner data" — the parking_lot contract — by unwrapping into the
//! poisoned guard.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex and return its data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock and return its data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
