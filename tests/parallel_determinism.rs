//! Golden determinism tests for the `fonduer-par` execution layer.
//!
//! The determinism contract: every deterministic stage — candidate
//! extraction, featurization (including vocabulary first-occurrence
//! ordering), and LF application — produces *byte-identical* artifacts at
//! every thread count. The single sanctioned exception is Hogwild
//! training, whose racy weight updates may differ across thread counts but
//! must converge to the same loss within tolerance.

use fonduer::prelude::*;
use fonduer_core::domains;
use fonduer_features::SparseAccess;
use fonduer_learning::{CandidateInput, HogwildLogReg};
use fonduer_synth::{generate_electronics, ElectronicsConfig};

fn dataset() -> SynthDataset {
    generate_electronics(&ElectronicsConfig {
        n_docs: 24,
        ..Default::default()
    })
}

#[test]
fn candidate_set_is_byte_identical_across_thread_counts() {
    let ds = dataset();
    let task = &domains::electronics::tasks(&ds)[0];
    let seq = task.extractor.extract_parallel(&ds.corpus, 1);
    assert!(!seq.candidates.is_empty());
    for n in [2, 8] {
        let par = task.extractor.extract_parallel(&ds.corpus, n);
        assert_eq!(seq.candidates, par.candidates, "n_threads={n}");
    }
}

#[test]
fn feature_set_and_vocab_order_are_byte_identical_across_thread_counts() {
    let ds = dataset();
    let task = &domains::electronics::tasks(&ds)[0];
    let cands = task.extractor.extract(&ds.corpus);
    let fz = Featurizer::new(FeatureConfig::all());
    let seq = fz.featurize_parallel(&ds.corpus, &cands, 1);
    assert!(!seq.vocab.is_empty());
    for n in [2, 8] {
        // `featurize_sharded` forces real worker threads through the
        // chunk-and-merge path even on a single-core host (where the public
        // `featurize_parallel` would resolve to the sequential fallback).
        let par = fz.featurize_sharded(&ds.corpus, &cands, n);
        // Vocabulary ordering: column i names the same feature, in the
        // sequential first-occurrence order.
        assert_eq!(seq.vocab.len(), par.vocab.len(), "n_threads={n}");
        for col in 0..seq.vocab.len() as u32 {
            assert_eq!(seq.vocab.name(col), par.vocab.name(col), "col {col}");
        }
        // CSR arrays identical (indptr/indices/data compare byte-for-byte).
        assert_eq!(seq.matrix, par.matrix, "n_threads={n}");
        // Cache statistics merge in input order too.
        assert_eq!(seq.stats.hits, par.stats.hits);
        assert_eq!(seq.stats.misses, par.stats.misses);
        // And the public API agrees, whatever the host resolves n to.
        let pub_par = fz.featurize_parallel(&ds.corpus, &cands, n);
        assert_eq!(seq.matrix, pub_par.matrix, "n_threads={n} (public)");
    }
}

#[test]
fn hashed_feature_matrix_is_byte_identical_across_thread_counts() {
    let ds = dataset();
    let task = &domains::electronics::tasks(&ds)[0];
    let cands = task.extractor.extract(&ds.corpus);
    let fz = Featurizer::new(FeatureConfig::all().with_hashing(16));
    let seq = fz.featurize_parallel(&ds.corpus, &cands, 1);
    assert!(seq.vocab.is_empty(), "hashing mode keeps no vocabulary");
    assert_eq!(seq.n_features(), 1 << 16);
    for n in [2, 8] {
        let par = fz.featurize_sharded(&ds.corpus, &cands, n);
        assert_eq!(seq.matrix, par.matrix, "n_threads={n}");
        assert_eq!(seq.stats, par.stats, "n_threads={n}");
        for r in 0..seq.matrix.n_rows() {
            assert_eq!(
                seq.modality_counts(r),
                par.modality_counts(r),
                "row {r} n_threads={n}"
            );
        }
    }
}

#[test]
fn label_matrix_is_byte_identical_across_thread_counts() {
    let ds = dataset();
    let task = &domains::electronics::tasks(&ds)[0];
    let cands = task.extractor.extract(&ds.corpus);
    let refs: Vec<&LabelingFunction> = task.lfs.iter().collect();
    let seq = LabelMatrix::apply(&refs, &ds.corpus, &cands);
    for n in [2, 8] {
        let par = LabelMatrix::apply_parallel(&refs, &ds.corpus, &cands, n);
        assert_eq!(seq, par, "n_threads={n}");
    }
}

#[test]
fn full_pipeline_output_matches_between_1_and_8_threads() {
    let ds = dataset();
    let task = &domains::electronics::tasks(&ds)[0];
    let run = |n_threads: usize| {
        let cfg = PipelineConfig::builder()
            .learner(fonduer_core::Learner::LogReg)
            .n_threads(n_threads)
            .build()
            .unwrap();
        let mut session = PipelineSession::new(&ds.corpus, &ds.gold, task, cfg).unwrap();
        session.output().unwrap()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.candidates.candidates, par.candidates.candidates);
    assert_eq!(seq.kb.entries, par.kb.entries);
    // Deterministic learner: marginals bit-identical.
    let seq_bits: Vec<u32> = seq.marginals.iter().map(|m| m.to_bits()).collect();
    let par_bits: Vec<u32> = par.marginals.iter().map(|m| m.to_bits()).collect();
    assert_eq!(seq_bits, par_bits);
}

fn hogwild_dataset(n: usize) -> (Vec<CandidateInput>, Vec<f32>) {
    (0..n)
        .map(|i| {
            let pos = i % 2 == 0;
            (
                CandidateInput {
                    mention_tokens: vec![vec![1], vec![2]],
                    features: if pos {
                        vec![0, 2, 3].into()
                    } else {
                        vec![1, 2, 4].into()
                    },
                },
                if pos { 0.95 } else { 0.05 },
            )
        })
        .unzip()
}

#[test]
fn hogwild_final_loss_matches_sequential_within_tolerance() {
    use fonduer_learning::ProbClassifier;
    let (inputs, targets) = hogwild_dataset(300);
    let mut seq = HogwildLogReg::new(5, 42, 1);
    seq.fit(&inputs, &targets);
    let mut hog = HogwildLogReg::new(5, 42, 8);
    hog.fit(&inputs, &targets);
    let l_seq = seq.mean_loss(&inputs, &targets);
    let l_hog = hog.mean_loss(&inputs, &targets);
    assert!(
        (l_seq - l_hog).abs() < 0.05,
        "sequential loss {l_seq} vs hogwild loss {l_hog}"
    );
    // And both models agree on every classification.
    for (inp, &t) in inputs.iter().zip(&targets) {
        assert_eq!(seq.predict_one(inp) > 0.5, t > 0.5);
        assert_eq!(hog.predict_one(inp) > 0.5, t > 0.5);
    }
}
