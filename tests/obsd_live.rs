//! Scrape-under-load: the `fonduer-obsd` debug server must serve complete,
//! validating responses while a 4-thread pipeline runs and resets the
//! telemetry registry between runs — no torn or mixed-epoch snapshots.
//!
//! One `#[test]` only: the server, the observe registry, and the progress
//! ring are process-global, so concurrent test functions would race.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use fonduer::prelude::*;
use fonduer_core::{domains, PipelineSession};
use fonduer_observe as observe;

fn corpus() -> Corpus {
    let mut c = Corpus::new("obsd-live");
    for i in 0..12 {
        let name = format!("sheet{i:02}");
        let html = format!(
            r#"<h1>SMBT{i:04}</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>{}</td></tr>
               <tr><td>Junction temperature</td><td>150</td></tr></table>"#,
            100 + i * 10,
        );
        c.add(parse_document(
            &name,
            &html,
            DocFormat::Pdf,
            &Default::default(),
        ));
    }
    c
}

fn extractor() -> CandidateExtractor {
    let parts: Vec<String> = (0..12).map(|i| format!("SMBT{i:04}")).collect();
    CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new("part", Box::new(DictionaryMatcher::new(&parts))),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(90.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document)
}

fn lfs() -> Vec<LabelingFunction> {
    vec![LabelingFunction::new(
        "collector_row",
        Modality::Tabular,
        |doc, cand| {
            let row = domains::row_words(doc, domains::arg(cand, 1));
            if row.is_empty() {
                ABSTAIN
            } else if fonduer_nlp::contains_word(&row, "collector") {
                TRUE
            } else {
                FALSE
            }
        },
    )]
}

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .train_frac(1.0)
        .learner(Learner::LogReg)
        .features(FeatureConfig::all())
        .n_threads(4)
        .build()
        .unwrap()
}

/// Minimal blocking HTTP client. Panics on short/torn responses: the
/// advertised `Content-Length` must equal the received body length.
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let cl: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    assert_eq!(cl, body.len(), "torn response for {target}");
    (status, body.to_string())
}

#[test]
fn scrape_under_load_is_never_torn() {
    let corpus = corpus();
    let gold = GoldKb::new();
    let ex = extractor();
    let lf_lib = lfs();
    let mut session = PipelineSession::from_parts(&corpus, &gold, &ex, &lf_lib, cfg()).unwrap();

    let addr = session.serve_obsd("127.0.0.1:0").expect("bind obsd");

    // First run so /report.json and /readyz have content before the
    // scrapers start asserting.
    session.output().expect("cold run");

    let stop = AtomicBool::new(false);
    let metrics_scrapes = AtomicU64::new(0);
    let report_scrapes = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Scraper 1: /metrics must always be a complete, validating
        // exposition — even mid-reset (the snapshot seqlock).
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(addr, "/metrics");
                assert_eq!(status, 200);
                observe::validate_prometheus(&body)
                    .unwrap_or_else(|e| panic!("invalid exposition under load: {e}\n{body}"));
                metrics_scrapes.fetch_add(1, Ordering::Relaxed);
            }
        });
        // Scraper 2: every /report.json line parses as JSON.
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(addr, "/report.json");
                assert_eq!(status, 200, "report published before scrapers started");
                for line in body.lines() {
                    observe::json::parse(line)
                        .unwrap_or_else(|e| panic!("bad report line ({e}): {line}"));
                }
                report_scrapes.fetch_add(1, Ordering::Relaxed);
            }
        });

        // Load generator: repeated 4-thread runs with registry resets in
        // between — the hostile path for snapshot coherence.
        for _ in 0..4 {
            observe::reset();
            session.invalidate();
            session.output().expect("run under scrape");
        }
        // A fast host can finish all four runs before either scraper
        // completes a round trip; hold the window open until both have
        // landed at least one request (the per-request read timeout
        // bounds each attempt, the deadline bounds the wait).
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while (metrics_scrapes.load(Ordering::Relaxed) == 0
            || report_scrapes.load(Ordering::Relaxed) == 0)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        metrics_scrapes.load(Ordering::Relaxed) > 0,
        "metrics scraper never completed a request"
    );
    assert!(
        report_scrapes.load(Ordering::Relaxed) > 0,
        "report scraper never completed a request"
    );

    // Spot checks on the remaining endpoints, post-load.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http_get(addr, "/readyz");
    assert_eq!(status, 200);
    let (status, body) = http_get(addr, "/trace");
    assert_eq!(status, 200);
    observe::json::parse(&body).expect("trace is valid JSON");
    let (status, body) = http_get(addr, "/docs/slowest?k=5");
    assert_eq!(status, 200);
    assert!(body.starts_with('['), "{body}");
    let (status, body) = http_get(addr, "/lfs");
    assert_eq!(status, 200);
    let v = observe::json::parse(&body).expect("lfs is valid JSON");
    assert!(
        v.get("lfs").is_some(),
        "lfs payload missing rows array: {body}"
    );

    // SSE: the ring replays retained events on connect, so three data
    // frames arrive without waiting for new work.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut acc = String::new();
    let mut buf = [0u8; 4096];
    while acc.matches("\ndata: ").count() < 3 {
        let n = stream.read(&mut buf).expect("sse read");
        assert!(n > 0, "SSE stream closed early:\n{acc}");
        acc.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    assert!(acc.contains("text/event-stream"));
    assert!(
        acc.contains("event: stage_finish") || acc.contains("event: doc"),
        "no recognizable progress events:\n{acc}"
    );
}
