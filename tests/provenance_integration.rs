//! End-to-end flight-recorder check (ISSUE 2 acceptance): one `run_task`
//! with provenance enabled must emit a `ProvenanceRecord` for every kept
//! candidate, with LF-vote lists consistent with the supervision label
//! matrix, and the Chrome-trace / Prometheus exporters must produce
//! documents that survive a round trip through a parser.

use fonduer::observe;
use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_core::pipeline::is_train_doc;

#[test]
fn every_kept_candidate_gets_a_consistent_provenance_record() {
    observe::reset();
    observe::provenance::set_recording(true);

    let ds = Domain::Electronics.generate(16, 7);
    let relation = "max_ce_voltage";
    let task = Task {
        extractor: electronics::extractor(&ds, relation, ContextScope::Document)
            .with_throttler(electronics::default_throttler(relation)),
        lfs: electronics::lfs(relation),
    };
    let cfg = PipelineConfig::default();
    let out = run_task(&ds.corpus, &ds.gold, &task, &cfg);
    let n = out.candidates.candidates.len();
    assert!(n > 0);
    assert!(
        n <= observe::provenance::capacity(),
        "fixture outgrew the ring; shrink it or raise FONDUER_PROVENANCE_CAP"
    );

    // (a) One record per kept candidate, aligned by index.
    let recs = observe::provenance::records();
    assert_eq!(recs.len(), n, "one provenance record per kept candidate");
    assert_eq!(observe::snapshot().counter("provenance.records"), n as u64);

    // Run metadata describes the extractor and LF library.
    let meta = observe::provenance::meta().expect("run recorded provenance meta");
    assert_eq!(meta.relation, relation);
    assert_eq!(meta.matchers, task.extractor.matcher_names());
    assert_eq!(meta.scope, task.extractor.scope.label());
    assert_eq!(meta.throttlers, task.extractor.throttler_names());
    let lf_names: Vec<String> = task.lfs.iter().map(|lf| lf.name.clone()).collect();
    assert_eq!(meta.lf_names, lf_names);

    // Recompute the training label matrix exactly as the pipeline does and
    // check every record's vote list against it.
    let train_idx: Vec<usize> = out
        .candidates
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| is_train_doc(&ds.corpus.doc(c.doc).name, cfg.train_frac, cfg.seed))
        .map(|(i, _)| i)
        .collect();
    let train_subset = fonduer::candidates::CandidateSet {
        schema: out.candidates.schema.clone(),
        candidates: train_idx
            .iter()
            .map(|&i| out.candidates.candidates[i].clone())
            .collect(),
    };
    let refs: Vec<&LabelingFunction> = task.lfs.iter().collect();
    let lm = LabelMatrix::apply(&refs, &ds.corpus, &train_subset);

    let mut row_of = vec![None; n];
    for (k, &i) in train_idx.iter().enumerate() {
        row_of[i] = Some(k);
    }
    let mut train_records = 0;
    for (i, (rec, cand)) in recs.iter().zip(&out.candidates.candidates).enumerate() {
        let doc = ds.corpus.doc(cand.doc);
        assert_eq!(rec.candidate_index, i);
        assert_eq!(rec.doc, doc.name);
        // Mentions mirror the candidate's spans and normalized texts.
        assert_eq!(rec.mentions.len(), cand.mentions.len());
        for (m, span) in rec.mentions.iter().zip(&cand.mentions) {
            assert_eq!(
                (m.sentence, m.start, m.end),
                (span.sentence.0, span.start, span.end)
            );
            assert_eq!(m.text, span.normalized_text(doc));
        }
        assert_eq!(
            rec.throttlers_passed as usize,
            task.extractor.throttlers.len()
        );
        // LF votes match the label matrix row for training candidates and
        // are empty outside the training split.
        match row_of[i] {
            Some(k) => {
                assert!(rec.in_train);
                assert_eq!(rec.lf_votes.as_slice(), lm.row(k), "candidate {i}");
                train_records += 1;
            }
            None => {
                assert!(!rec.in_train);
                assert!(rec.lf_votes.is_empty());
            }
        }
        // Feature mix and marginal are the pipeline's own values.
        assert!(
            rec.feature_counts.iter().sum::<u32>() > 0,
            "candidate {i} has no features"
        );
        assert_eq!(rec.marginal, out.marginals[i]);
    }
    assert!(train_records > 0, "fixture produced no training candidates");

    // (b) The pipeline's LfDiagnostics agrees with the recomputed matrix.
    assert_eq!(out.lf_diagnostics.rows.len(), task.lfs.len());
    assert_eq!(out.lf_diagnostics.n_candidates, train_idx.len());
    for (j, row) in out.lf_diagnostics.rows.iter().enumerate() {
        assert_eq!(row.name, task.lfs[j].name);
        assert_eq!(row.coverage, lm.coverage(j));
        assert_eq!(row.overlap, lm.overlap(j));
        assert_eq!(row.conflict, lm.conflict(j));
    }
    assert_eq!(out.lf_diagnostics.total_coverage, lm.total_coverage());
    // Gold was supplied, so voting LFs carry empirical accuracy.
    assert!(out
        .lf_diagnostics
        .rows
        .iter()
        .any(|r| r.empirical_accuracy.is_some()));

    // (c) Every exporter round-trips.
    for line in observe::provenance::render_jsonl().lines() {
        observe::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable provenance line ({e}): {line}"));
    }
    let snap = observe::snapshot();
    let chrome = observe::render_chrome_trace(&snap);
    let doc = observe::json::parse(&chrome).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(observe::json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let prom = observe::render_prometheus(&snap);
    let families = observe::validate_prometheus(&prom).expect("prometheus text validates");
    assert!(families > 0);

    // Reset clears the flight recorder too.
    observe::reset();
    assert_eq!(observe::provenance::records().len(), 0);
    assert!(observe::provenance::meta().is_none());
}
