//! Allocation-budget regression gate for the ingest front end.
//!
//! Parse + NLP of a fixed datasheet-style document must stay under a
//! committed allocations-per-document budget. A counting global allocator
//! wraps `System`; the test is alone in this integration binary so the
//! count isolates the parse path (after a warmup that absorbs lazy
//! one-time initialization).
//!
//! The budget is deliberately a ceiling with headroom for allocator-count
//! jitter, not a tight pin: it exists to catch reintroduction of per-token
//! or per-word heap traffic (an accidental `to_string()` in the tokenizer
//! multiplies the count by the token count, far beyond any headroom).

use fonduer::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Fixed synthetic datasheet: one heading, prose, and a ratings table —
/// the document shape the ingest path is optimized for.
const DOC: &str = r#"<html><body>
  <h1 class="title">SMBT3904...MMBT3904</h1>
  <p>NPN Silicon Switching Transistors. High DC current gain, low
  collector-emitter saturation voltage 0.2 V at 10 mA. Operating range
  -65 to 150 degrees. For switching and amplification 100 MHz.</p>
  <table>
    <caption>Maximum Ratings at TA = 25</caption>
    <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
    <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
    <tr><td>Collector-emitter voltage</td><td>VCEO</td><td>40</td><td>V</td></tr>
    <tr><td rowspan="2">Total power dissipation</td><td>P1</td><td>330</td><td rowspan="2">mW</td></tr>
    <tr><td>P2</td><td>250</td></tr>
    <tr><td>Junction temperature</td><td>Tj</td><td>150</td><td>C</td></tr>
  </table>
  <p>Storage temperature TS: -65 to 150. Thermal resistance junction to
  ambient 417 K/W on PCB 1.5 W at 25 ambient, gain 150. Next section
  covers electrical characteristics measured at 2.5 mA and 10 V.</p>
</body></html>"#;

/// Committed allocations-per-document ceiling for parse + NLP of `DOC`.
///
/// Measured after the arena refactor: ~695 allocations/doc. What remains is
/// markup-tree construction (one `String` per tag/attr/text node) and one
/// shared `Structural` per markup element (its three ancestor vectors are
/// `Arc` snapshots shared across every element under the same open-ancestor
/// state); tokenization, tagging, and the per-word visual attributes are
/// allocation-free. The pre-arena string model measured ~2512 on the same
/// document — the eliminated traffic was per-token word/lemma/POS/NER
/// `String`s, `SentenceData` vectors, per-sentence deep `Structural`
/// clones, per-word font `String`s, per-cell ancestor-vector clones, and a
/// `Vec<char>` per markup tag. The budget sits above the measurement with
/// headroom for allocator-count jitter.
const BUDGET_ALLOCS_PER_DOC: u64 = 800;

#[test]
fn parse_nlp_stays_under_allocation_budget() {
    // Warm up lazy one-time state (interner shards, counters, pools).
    for _ in 0..3 {
        let d = parse_document("warm", DOC, DocFormat::Pdf, &ParseOptions::default());
        assert!(d.word_count() > 80);
    }
    const RUNS: u64 = 10;
    let start = ALLOCS.load(Relaxed);
    for i in 0..RUNS {
        let name = if i % 2 == 0 { "even" } else { "odd" };
        let d = parse_document(name, DOC, DocFormat::Pdf, &ParseOptions::default());
        assert!(!d.sentences.is_empty());
    }
    let per_doc = (ALLOCS.load(Relaxed) - start) / RUNS;
    eprintln!("ingest allocations/doc = {per_doc} (budget {BUDGET_ALLOCS_PER_DOC})");
    assert!(
        per_doc <= BUDGET_ALLOCS_PER_DOC,
        "parse+NLP of the fixed document allocated {per_doc} times \
         (budget {BUDGET_ALLOCS_PER_DOC}); per-token heap traffic has crept \
         back into the ingest path"
    );
}
