//! Tracing v2 end-to-end: spans submitted to the work-stealing pool must
//! re-parent under the submitting stage's span on every worker thread,
//! flow events must tie submission to execution, the rendered Chrome
//! trace must stay monotonic per thread, and the whole substrate must
//! tolerate a reader hammering `snapshot()` while workers record.
//!
//! These tests mutate process-global observe state (reset, span-event
//! enablement), so they serialize on a file-local lock.

use fonduer::observe;
use fonduer_par::Pool;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn worker_spans_reparent_under_submitting_stage() {
    let _g = lock();
    observe::reset();
    observe::set_span_events(true);

    let items: Vec<u64> = (0..64).collect();
    let stage_id;
    {
        let stage = observe::span("stage_x");
        stage_id = stage.id();
        let out = Pool::exact(4).par_map(&items, |&x| {
            // Enough work that every worker participates.
            std::thread::sleep(Duration::from_micros(200));
            x * 2
        });
        assert_eq!(out[3], 6);
    }

    let ev = observe::span_events();
    observe::set_span_events(false);

    // Worker spans carry the submitting stage's dotted path prefix and
    // parent to the stage's span id — on foreign threads.
    let workers: Vec<_> = ev
        .spans
        .iter()
        .filter(|s| s.path.ends_with(".par.worker"))
        .collect();
    assert_eq!(workers.len(), 4, "one span per worker, got {workers:?}");
    for w in &workers {
        assert_eq!(w.path, "stage_x.par.worker");
        assert_eq!(
            w.parent, stage_id,
            "worker span must parent under the submitting stage"
        );
    }
    let tids: std::collections::BTreeSet<_> = workers.iter().map(|s| s.tid).collect();
    assert_eq!(tids.len(), 4, "each worker has its own tid: {tids:?}");

    // Every flow started at submission ended on a worker; paired by id.
    let starts: std::collections::BTreeSet<u64> =
        ev.flows.iter().filter(|f| f.start).map(|f| f.id).collect();
    let ends: std::collections::BTreeSet<u64> =
        ev.flows.iter().filter(|f| !f.start).map(|f| f.id).collect();
    assert_eq!(starts.len(), 4);
    assert_eq!(starts, ends, "every flow start must be consumed");

    // The aggregate registry sees the same parentage as dotted paths.
    let snap = observe::snapshot();
    let agg = snap
        .span("stage_x.par.worker")
        .expect("aggregated worker span");
    assert_eq!(agg.count, 4);
}

#[test]
fn chrome_trace_has_named_worker_threads_and_monotonic_ts() {
    let _g = lock();
    observe::reset();
    observe::set_span_events(true);

    let items: Vec<u64> = (0..64).collect();
    {
        let _stage = observe::span("stage_y");
        Pool::exact(4).par_map(&items, |&x| {
            std::thread::sleep(Duration::from_micros(100));
            x + 1
        });
    }
    let trace = observe::render_chrome_trace_with(&observe::snapshot(), &observe::span_events());
    observe::set_span_events(false);

    let v = observe::json::parse(&trace).expect("trace parses");
    let events = v
        .get("traceEvents")
        .and_then(observe::json::Value::as_array)
        .expect("traceEvents array");

    let mut worker_names = 0usize;
    let mut per_tid_last: std::collections::BTreeMap<i64, i64> = Default::default();
    let (mut flow_s, mut flow_f) = (0usize, 0usize);
    for e in events {
        let ph = e.get("ph").and_then(observe::json::Value::as_str).unwrap();
        match ph {
            "M" => {
                let is_thread_name =
                    e.get("name").and_then(observe::json::Value::as_str) == Some("thread_name");
                let arg_name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(observe::json::Value::as_str)
                    .unwrap_or("");
                if is_thread_name && arg_name.starts_with("par.worker.") {
                    worker_names += 1;
                }
            }
            "X" => {
                let tid = e.get("tid").and_then(observe::json::Value::as_f64).unwrap() as i64;
                let ts = e.get("ts").and_then(observe::json::Value::as_f64).unwrap() as i64;
                let last = per_tid_last.entry(tid).or_insert(i64::MIN);
                assert!(ts >= *last, "ts regressed on tid {tid}: {ts} < {last}");
                *last = ts;
            }
            "s" => flow_s += 1,
            "f" => flow_f += 1,
            _ => {}
        }
    }
    assert_eq!(worker_names, 4, "4 named worker threads");
    assert!(per_tid_last.len() >= 5, "main + 4 worker timelines");
    assert_eq!(flow_s, 4, "one flow start per worker");
    assert_eq!(flow_f, 4, "one flow finish per worker");
}

#[test]
fn snapshot_stays_consistent_under_concurrent_recording() {
    let _g = lock();
    observe::reset();
    observe::set_span_events(true);

    const WORKERS: usize = 4;
    const TASKS: usize = 40;
    const SLEEP_US: u64 = 500;

    let parent_wall;
    {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            // Reader: hammer snapshot() + span_events() while workers record.
            let reader = s.spawn(|| {
                let mut polls = 0u64;
                let mut last_tasks = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = observe::snapshot();
                    // Counters are monotonic even mid-run.
                    let tasks = snap.counter("par.tasks");
                    assert!(tasks >= last_tasks, "counter went backwards");
                    last_tasks = tasks;
                    // Histogram summaries are internally consistent.
                    for (name, h) in &snap.histograms {
                        assert!(h.min <= h.max, "{name}: min > max");
                        assert!(h.sum >= h.max, "{name}: sum < max");
                    }
                    // Span-event log never tears: flow ends ⊆ flow starts.
                    let ev = observe::span_events();
                    let starts: std::collections::BTreeSet<u64> =
                        ev.flows.iter().filter(|f| f.start).map(|f| f.id).collect();
                    for f in ev.flows.iter().filter(|f| !f.start) {
                        assert!(starts.contains(&f.id), "flow end without start");
                    }
                    polls += 1;
                }
                polls
            });

            {
                let _stage = observe::span("stress_stage");
                let items: Vec<u64> = (0..TASKS as u64).collect();
                Pool::exact(WORKERS).par_map(&items, |&x| {
                    observe::counter("stress.tasks_done", 1);
                    observe::hist_record("stress.lat_us", x);
                    std::thread::sleep(Duration::from_micros(SLEEP_US));
                    x
                });
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().expect("reader thread") > 0);
        });
        parent_wall = t0.elapsed();
    }
    observe::set_span_events(false);

    let snap = observe::snapshot();
    assert_eq!(snap.counter("stress.tasks_done"), TASKS as u64);
    assert_eq!(snap.histograms["stress.lat_us"].count, TASKS as u64);

    // Worker busy time must cover the tasks' sleep and stay bounded by the
    // parent's wall clock across all workers (generous tolerance: sleeps
    // overshoot wildly on loaded hosts, but busy can never exceed the
    // wall-clock area workers had available).
    let busy = &snap.histograms["par.worker_busy_us"];
    assert_eq!(busy.count, WORKERS as u64);
    let min_expected = TASKS as u64 * SLEEP_US;
    assert!(
        busy.sum >= min_expected,
        "busy sum {}us < total task sleep {}us",
        busy.sum,
        min_expected
    );
    let max_expected = (parent_wall.as_micros() as u64) * WORKERS as u64 * 2;
    assert!(
        busy.sum <= max_expected,
        "busy sum {}us exceeds {} workers x parent wall {}us",
        busy.sum,
        WORKERS,
        parent_wall.as_micros()
    );

    // Worker span durations also sum within the same envelope.
    let worker_span = snap
        .span("stress_stage.par.worker")
        .expect("worker spans aggregated");
    assert_eq!(worker_span.count, WORKERS as u64);
    assert!(worker_span.total_us >= min_expected);
    assert!(worker_span.total_us <= max_expected);
}

#[test]
fn doc_timings_cap_bounds_the_table() {
    let _g = lock();
    observe::reset();
    let prev = observe::doc_timings_cap();
    observe::set_doc_timings_cap(8);
    let names: Vec<String> = (0..32).map(|i| format!("doc_{i:02}")).collect();
    // Record from 4 threads at once; the cap must hold regardless.
    Pool::exact(4).par_map(&names, |name| {
        observe::doc_stage_ns(name, "candgen", 1_000);
    });
    let timings = observe::doc_timings();
    assert!(timings.len() <= 8, "cap violated: {} docs", timings.len());
    assert_eq!(
        timings.len() as u64 + observe::doc_timings_dropped(),
        32,
        "every record either landed or was counted dropped"
    );
    observe::set_doc_timings_cap(prev);
}
