//! Document-granular incremental recomputation: the per-document shard
//! caches behind [`PipelineSession`] must be invisible in the artifacts.
//! A shard-assembled run is byte-identical to the direct corpus-level
//! computation; any sequence of upserts/removals converges to exactly the
//! cold run over the final corpus; and corpus mutations are typed errors,
//! never panics, when they reference unknown or ambiguous documents.

use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_core::{Error, PipelineSession};
use fonduer_datamodel::{Corpus, DocId};
use fonduer_features::{FeatureSet, Featurizer};
use fonduer_supervision::LabelMatrix;
use fonduer_synth::{Domain, SynthDataset};
use rand::{rngs::StdRng, Rng, SeedableRng};

const RELATION: &str = "has_collector_current";

fn dataset(n_docs: usize, seed: u64) -> SynthDataset {
    Domain::Electronics.generate(n_docs, seed)
}

fn config() -> PipelineConfig {
    PipelineConfig::builder()
        .learner(Learner::LogReg)
        .features(FeatureConfig::all())
        .build()
        .expect("config is valid")
}

fn session<'a>(
    ds: &'a SynthDataset,
    extractor: &'a CandidateExtractor,
    lfs: &'a [LabelingFunction],
) -> PipelineSession<'a> {
    PipelineSession::from_parts(&ds.corpus, &ds.gold, extractor, lfs, config())
        .expect("session inputs are valid")
}

/// Byte-identity for feature sets: same CSR arrays, same vocabulary
/// content column for column.
fn assert_features_eq(a: &FeatureSet, b: &FeatureSet, ctx: &str) {
    assert_eq!(*a.matrix, *b.matrix, "{ctx}: CSR matrices differ");
    assert_eq!(a.vocab.len(), b.vocab.len(), "{ctx}: vocab sizes differ");
    for col in 0..a.vocab.len() as u32 {
        assert_eq!(a.vocab.name(col), b.vocab.name(col), "{ctx}: col {col}");
    }
}

/// Golden test: the shard-assembled candidate set, feature matrix, and
/// label matrix are byte-identical to the direct (monolithic) computation,
/// and the end-to-end metrics agree.
#[test]
fn shard_assembly_is_byte_identical_to_direct_computation() {
    let ds = dataset(14, 7);
    let extractor = electronics::extractor(&ds, RELATION, ContextScope::Document)
        .with_throttler(electronics::default_throttler(RELATION));
    let lfs = electronics::lfs(RELATION);
    let mut s = session(&ds, &extractor, &lfs);

    // Candidates: shard-merged set == direct extraction.
    let direct_cands = extractor.extract(&ds.corpus);
    assert_eq!(
        *s.candidates().expect("candgen"),
        direct_cands,
        "shard-merged candidate set differs from direct extraction"
    );

    // Features: shard-merged CSR == direct corpus-level featurization.
    let direct_feats = Featurizer::new(FeatureConfig::all()).featurize(&ds.corpus, &direct_cands);
    assert_features_eq(
        s.featurize().expect("featurize"),
        &direct_feats,
        "cold session vs direct",
    );

    // Labels: block-assembled matrix == direct LabelMatrix::apply over the
    // same training subset.
    let sup = s.supervise().expect("supervise");
    let train_subset = fonduer::candidates::CandidateSet {
        schema: direct_cands.schema.clone(),
        candidates: sup
            .train_idx
            .iter()
            .map(|&i| direct_cands.candidates[i].clone())
            .collect(),
    };
    let refs: Vec<&LabelingFunction> = lfs.iter().collect();
    let direct_labels = LabelMatrix::apply(&refs, &ds.corpus, &train_subset);
    assert_eq!(
        sup.label_matrix, direct_labels,
        "shard-assembled label matrix differs from direct application"
    );

    // Metrics: identical P/R/F1 to the one-shot pipeline over the same
    // inputs.
    let metrics = *s.evaluate().expect("evaluate");
    let task = fonduer_core::Task {
        extractor: electronics::extractor(&ds, RELATION, ContextScope::Document)
            .with_throttler(electronics::default_throttler(RELATION)),
        lfs: electronics::lfs(RELATION),
    };
    let direct = fonduer::core::run_task(&ds.corpus, &ds.gold, &task, &config());
    assert_eq!(metrics, direct.metrics, "PrF1 differs from run_task");
}

/// A warm upsert recomputes exactly the upserted document; every other
/// document is served from the shard cache.
#[test]
fn warm_upsert_recomputes_exactly_one_document() {
    let ds = dataset(16, 7);
    let extractor = electronics::extractor(&ds, RELATION, ContextScope::Document);
    let lfs = electronics::lfs(RELATION);
    let mut s = session(&ds, &extractor, &lfs);
    s.featurize().expect("cold featurize");
    assert_eq!(s.recomputed_docs(), 16, "cold run recomputes every doc");

    let revised = dataset(16, 8).corpus.doc(DocId::from_usize(5)).clone();
    let id = s.upsert_document(revised).expect("name is unique");
    assert_eq!(id, DocId::from_usize(5), "same name replaces in place");
    s.featurize().expect("warm featurize");
    assert_eq!(
        s.recomputed_docs(),
        1,
        "warm upsert must recompute only the upserted document"
    );

    // Upserting an identical copy is a full cache hit: zero recomputes.
    let copy = s.corpus().doc(id).clone();
    s.upsert_document(copy).expect("name is unique");
    s.featurize().expect("identical upsert");
    assert_eq!(s.recomputed_docs(), 0, "identical content is a shard hit");

    let stats = s.shard_stats();
    assert!(stats.hits > 0, "warm walks must hit the shard cache");
    assert_eq!(stats.evicts, 0, "capacity covers the corpus");
}

/// Removing a document shifts every later `DocId`; the mutated session
/// must produce exactly what a fresh session over the shrunken corpus
/// produces.
#[test]
fn remove_matches_fresh_session_on_shrunken_corpus() {
    let ds = dataset(12, 7);
    let extractor = electronics::extractor(&ds, RELATION, ContextScope::Document);
    let lfs = electronics::lfs(RELATION);
    let mut s = session(&ds, &extractor, &lfs);
    s.featurize().expect("cold run");

    let gone = s.remove_document(DocId::from_usize(4)).expect("in range");
    assert_eq!(s.corpus().len(), 11);
    assert!(
        s.corpus().index_of(&gone.name).is_none(),
        "removed document must not remain in the corpus view"
    );

    let shrunk = s.corpus().clone();
    let mut fresh = PipelineSession::from_parts(&shrunk, &ds.gold, &extractor, &lfs, config())
        .expect("session inputs are valid");
    assert_eq!(
        *s.candidates().expect("mutated"),
        *fresh.candidates().expect("fresh"),
        "candidate ids must re-point after the removal shift"
    );
    assert_features_eq(
        &s.featurize().expect("mutated").clone(),
        fresh.featurize().expect("fresh"),
        "remove vs fresh",
    );
    assert_eq!(
        s.supervise().expect("mutated").label_matrix,
        fresh.supervise().expect("fresh").label_matrix,
    );
}

/// Property: any random sequence of upserts and removals converges to the
/// cold run over the final corpus — the shard caches never leak stale
/// state into the artifacts.
#[test]
fn random_mutation_sequences_converge_to_cold_run() {
    let base = dataset(10, 7);
    // Revised editions of the same ten documents, three variants each.
    let variants: Vec<Corpus> = [8u64, 9, 10]
        .iter()
        .map(|&seed| dataset(10, seed).corpus)
        .collect();
    let extractor = electronics::extractor(&base, RELATION, ContextScope::Document);
    let lfs = electronics::lfs(RELATION);

    for case in 0u64..4 {
        let mut rng = StdRng::seed_from_u64(0xF0D0 + case);
        let mut s = session(&base, &extractor, &lfs);
        s.featurize().expect("cold run");

        for _ in 0..6 {
            if rng.gen_bool(0.75) || s.corpus().len() <= 2 {
                let v = &variants[rng.gen_range(0..variants.len())];
                let doc = v.doc(DocId::from_usize(rng.gen_range(0..v.len()))).clone();
                // The pick may collide with a removed name (re-adding it)
                // or an existing one (replacing it) — both are upserts.
                s.upsert_document(doc).expect("names are unique");
            } else {
                let id = DocId::from_usize(rng.gen_range(0..s.corpus().len()));
                s.remove_document(id).expect("id is in range");
            }
            s.featurize().expect("mutated walk");
        }

        let final_corpus = s.corpus().clone();
        let mut cold =
            PipelineSession::from_parts(&final_corpus, &base.gold, &extractor, &lfs, config())
                .expect("session inputs are valid");
        assert_eq!(
            *s.candidates().expect("mutated"),
            *cold.candidates().expect("cold"),
            "case {case}: candidates diverged"
        );
        assert_features_eq(
            &s.featurize().expect("mutated").clone(),
            cold.featurize().expect("cold"),
            &format!("case {case}"),
        );
        assert_eq!(
            s.supervise().expect("mutated").label_matrix,
            cold.supervise().expect("cold").label_matrix,
            "case {case}: label matrices diverged"
        );
    }
}

/// Mutations referencing unknown or ambiguous documents are typed errors.
#[test]
fn mutation_errors_are_typed_not_panics() {
    let ds = dataset(6, 7);
    let extractor = electronics::extractor(&ds, RELATION, ContextScope::Document);
    let lfs = electronics::lfs(RELATION);
    let mut s = session(&ds, &extractor, &lfs);

    match s.remove_document(DocId::from_usize(6)) {
        Err(Error::DocNotFound { doc, n_docs }) => {
            assert_eq!(doc, DocId::from_usize(6));
            assert_eq!(n_docs, 6);
        }
        other => panic!("expected DocNotFound, got {other:?}"),
    }

    // Force an ambiguous name: two documents sharing it makes any upsert
    // of that name unresolvable.
    let mut corpus = ds.corpus.clone();
    let dup = corpus.doc(DocId::from_usize(0)).clone();
    corpus.add(dup.clone());
    let mut amb = PipelineSession::from_parts(&corpus, &ds.gold, &extractor, &lfs, config())
        .expect("session inputs are valid");
    match amb.upsert_document(dup) {
        Err(Error::DuplicateDocId { name, count }) => {
            assert_eq!(name, corpus.doc(DocId::from_usize(0)).name);
            assert_eq!(count, 2);
        }
        other => panic!("expected DuplicateDocId, got {other:?}"),
    }
}

/// A supervision-options change leaves every label shard valid: the label
/// matrix reassembles from cache hits and no document recomputes.
#[test]
fn gen_opts_change_reuses_label_shards() {
    let ds = dataset(12, 7);
    let extractor = electronics::extractor(&ds, RELATION, ContextScope::Document);
    let lfs = electronics::lfs(RELATION);
    let mut s = session(&ds, &extractor, &lfs);
    s.supervise().expect("cold supervise");

    let mut opts = fonduer::supervision::GenerativeOptions::default();
    opts.iterations += 5;
    s.set_gen_opts(opts);
    s.supervise().expect("warm supervise");
    assert_eq!(
        s.recomputed_docs(),
        0,
        "gen-opts changes must not recompute any document's shards"
    );
}
