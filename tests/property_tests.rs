//! Randomized property tests over the core data structures and invariants,
//! spanning crates: generated documents always validate, tokenization
//! preserves offsets, alignment is sound, sparse representations agree,
//! the generative model stays calibrated, and scopes nest.
//!
//! Cases are generated with the workspace's deterministic `StdRng` (seeded
//! per test), so failures reproduce exactly; each property runs a fixed
//! number of random cases in the spirit of property-based testing.

use fonduer::prelude::*;
use fonduer_datamodel::{assert_valid, ContextRef, DocumentBuilder, SentenceData};
use fonduer_features::{CooMatrix, CsrMatrix, FeatureSink, LilMatrix, SparseAccess};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 64;

const WORD_CHARS: &[char] = &[
    'A', 'B', 'C', 'x', 'y', 'z', 'M', 'T', '0', '1', '2', '9', '°', '%', '$', '-',
];
const TEXT_CHARS: &[char] = &[
    'A', 'b', 'C', 'd', 'E', 'f', '0', '1', '5', '9', ' ', ' ', ' ', '.', ',', ';', ':', '(', ')',
    '-', '~', '≤', '°',
];
const SOUP_CHARS: &[char] = &[
    'a', 'Z', '0', '7', ' ', '<', '>', '/', '=', '"', 't', 'd', 'r', 'h', 'p',
];

fn chars_from(rng: &mut StdRng, alphabet: &[char], len: usize) -> String {
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// A word of 1-8 characters (letters, digits, units punctuation).
fn word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=8);
    chars_from(rng, WORD_CHARS, len)
}

/// Free text of up to 120 characters: words, punctuation, numbers, spaces.
fn text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..=120);
    chars_from(rng, TEXT_CHARS, len)
}

#[test]
fn tokenizer_offsets_always_slice_back() {
    let mut rng = StdRng::seed_from_u64(0xF0);
    for _ in 0..CASES {
        let s = text(&mut rng);
        for tok in fonduer_nlp::tokenize(&s) {
            let t = tok.text(&s);
            assert_eq!(&s[tok.start as usize..tok.end as usize], t);
            assert!(!t.is_empty());
            assert!(!t.chars().next().unwrap().is_whitespace());
        }
    }
}

#[test]
fn tokens_are_monotone_and_disjoint() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    for _ in 0..CASES {
        let s = text(&mut rng);
        let toks = fonduer_nlp::tokenize(&s);
        for w in toks.windows(2) {
            assert!(w[0].end <= w[1].start, "{:?} then {:?}", w[0], w[1]);
        }
    }
}

#[test]
fn sentence_splitter_covers_text() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    for _ in 0..CASES {
        let s = text(&mut rng);
        // Every sentence range is in bounds and ordered.
        let spans = fonduer_nlp::split_sentences(&s);
        let mut prev_end = 0;
        for (a, b) in spans {
            assert!(a <= b && b <= s.len());
            assert!(a >= prev_end);
            prev_end = b;
        }
    }
}

#[test]
fn built_documents_always_validate() {
    let mut rng = StdRng::seed_from_u64(0xF3);
    for _ in 0..CASES {
        let rows = rng.gen_range(1u32..5);
        let cols = rng.gen_range(1u32..5);
        let sentences: Vec<Vec<String>> = (0..rng.gen_range(1..6))
            .map(|_| (0..rng.gen_range(1..6)).map(|_| word(&mut rng)).collect())
            .collect();
        let mut b = DocumentBuilder::new("prop", DocFormat::Html);
        let sec = b.section();
        let tb = b.text_block(sec);
        let p = b.paragraph(ContextRef::TextBlock(tb));
        for words in &sentences {
            b.sentence(p, SentenceData::from_words(words));
        }
        let t = b.table(sec, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let cell = b.cell_at(t, r, c);
                let cp = b.paragraph(ContextRef::Cell(cell));
                b.sentence(cp, SentenceData::from_words(&[format!("c{r}x{c}")]));
            }
        }
        let d = b.finish();
        assert_valid(&d);
        // Traversal invariants: every cell sentence resolves to its table.
        for sid in d.sentence_ids() {
            if let Some(cell) = d.cell_of_sentence(sid) {
                assert_eq!(d.cell(cell).table, fonduer_datamodel::TableId(0));
            }
        }
    }
}

#[test]
fn parse_document_never_panics_and_validates() {
    let mut rng = StdRng::seed_from_u64(0xF4);
    for _ in 0..CASES {
        let len = rng.gen_range(0..=300);
        let html = chars_from(&mut rng, SOUP_CHARS, len);
        // Arbitrary tag soup must parse into a *valid* document.
        let d = parse_document("soup", &html, DocFormat::Html, &Default::default());
        assert_valid(&d);
    }
}

#[test]
fn alignment_is_injective_and_correct() {
    let mut rng = StdRng::seed_from_u64(0xF5);
    for _ in 0..CASES {
        let original: Vec<String> = (0..rng.gen_range(0..30)).map(|_| word(&mut rng)).collect();
        // Converted = original with some words dropped: every mapped index
        // must point at an equal word, and mapping must be injective.
        let converted: Vec<String> = original
            .iter()
            .filter(|_| !rng.gen::<bool>())
            .cloned()
            .collect();
        let a = fonduer_parser::align_words(&original, &converted);
        let mut seen = std::collections::HashSet::new();
        for (i, m) in a.mapping.iter().enumerate() {
            if let Some(j) = m {
                assert_eq!(&converted[i], &original[*j]);
                assert!(seen.insert(*j), "mapping must be injective");
            }
        }
    }
}

#[test]
fn sparse_representations_agree() {
    let mut rng = StdRng::seed_from_u64(0xF6);
    for _ in 0..CASES {
        let n = rng.gen_range(1..200);
        let entries: Vec<(usize, u32, f32)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0usize..50),
                    rng.gen_range(0u32..64),
                    rng.gen_range(-2.0f32..2.0),
                )
            })
            .collect();
        let mut lil = LilMatrix::new();
        let mut coo = CooMatrix::new();
        let mut max_row = 0;
        for &(r, c, v) in &entries {
            lil.set(r, c, v);
            coo.push(r, c, v);
            max_row = max_row.max(r);
        }
        for r in 0..=max_row {
            assert_eq!(lil.row_of(r), coo.row_of(r), "row {}", r);
        }
        assert_eq!(coo.to_lil().row_of(max_row), lil.row_of(max_row));
    }
}

#[test]
fn csr_round_trips_random_rows() {
    let mut rng = StdRng::seed_from_u64(0xFB);
    for _ in 0..CASES {
        let n_rows = rng.gen_range(0..20);
        let rows: Vec<Vec<u32>> = (0..n_rows)
            .map(|_| {
                let mut ids: Vec<u32> = (0..rng.gen_range(0..30))
                    .map(|_| rng.gen_range(0u32..100))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        let mut csr = CsrMatrix::new();
        for ids in &rows {
            csr.push_ids(ids.iter().copied());
        }
        assert_eq!(csr.n_rows(), n_rows);
        // indptr is monotone and closes over the flat arrays.
        for w in csr.indptr().windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*csr.indptr().last().unwrap() as usize, csr.indices().len());
        assert_eq!(csr.indices().len(), csr.data().len());
        for (r, ids) in rows.iter().enumerate() {
            assert_eq!(csr.row_ids(r), ids.as_slice(), "row {r}");
            assert!(csr.row_data(r).iter().all(|&v| v == 1.0));
        }
        // The LIL view agrees with the CSR rows.
        let lil = csr.to_lil();
        for (r, ids) in rows.iter().enumerate() {
            let got: Vec<u32> = lil.row_of(r).iter().map(|&(c, _)| c).collect();
            assert_eq!(&got, ids, "lil row {r}");
        }
    }
}

#[test]
fn csr_push_row_sorts_and_dedups_arbitrary_entries() {
    let mut rng = StdRng::seed_from_u64(0xFC);
    for _ in 0..CASES {
        let entries: Vec<(u32, f32)> = (0..rng.gen_range(0..40))
            .map(|_| (rng.gen_range(0u32..16), rng.gen_range(-2.0f32..2.0)))
            .collect();
        let mut csr = CsrMatrix::new();
        let r = csr.push_row(entries.clone());
        let ids = csr.row_ids(r);
        // Strictly increasing columns — sorted with duplicates collapsed.
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "{ids:?}");
        }
        // Last write wins on duplicate columns, as LilMatrix::set does.
        for (&c, &v) in ids.iter().zip(csr.row_data(r)) {
            let want = entries.iter().rev().find(|&&(ec, _)| ec == c).unwrap().1;
            assert_eq!(v, want, "col {c}");
        }
    }
}

#[test]
fn feature_hashing_is_deterministic_across_runs_and_threads() {
    let mut rng = StdRng::seed_from_u64(0xFD);
    for _ in 0..CASES {
        let bits = rng.gen_range(4u8..=24);
        let names: Vec<String> = (0..rng.gen_range(1..40)).map(|_| word(&mut rng)).collect();
        let hash_all = |names: &[String]| -> Vec<(u32, u8)> {
            let mut sink = FeatureSink::hashed(bits);
            for n in names {
                sink.feat(n);
            }
            sink.take_row()
        };
        let here = hash_all(&names);
        // Every bucket is inside the table.
        assert!(here.iter().all(|&(id, _)| u64::from(id) < 1u64 << bits));
        // Same names, same buckets: re-run in this thread and in others.
        assert_eq!(here, hash_all(&names));
        let results: Vec<Vec<(u32, u8)>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| hash_all(&names)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(here, r);
        }
    }
}

fn random_votes(rng: &mut StdRng, rows: usize, cols: usize) -> LabelMatrix {
    let mut lm = LabelMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            lm.set(i, j, rng.gen_range(-1i8..=1));
        }
    }
    lm
}

#[test]
fn generative_marginals_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0xF7);
    for _ in 0..CASES {
        let n = rng.gen_range(1..100);
        let lm = random_votes(&mut rng, n, 4);
        let gm = GenerativeModel::fit(&lm, &GenerativeOptions::default());
        for p in gm.predict(&lm) {
            assert!((0.0..=1.0).contains(&p), "{}", p);
            assert!(p.is_finite());
        }
        for a in &gm.accuracies {
            assert!((0.5..=0.98).contains(a));
        }
    }
}

#[test]
fn label_matrix_metrics_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF8);
    for _ in 0..CASES {
        let n = rng.gen_range(1..50);
        let lm = random_votes(&mut rng, n, 3);
        for j in 0..3 {
            let (cov, ovl, cfl) = (lm.coverage(j), lm.overlap(j), lm.conflict(j));
            assert!((0.0..=1.0).contains(&cov));
            assert!(ovl <= cov + 1e-12, "overlap {} > coverage {}", ovl, cov);
            assert!(cfl <= ovl + 1e-12, "conflict {} > overlap {}", cfl, ovl);
        }
    }
}

#[test]
fn bce_loss_nonnegative_and_grad_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF9);
    for _ in 0..256 {
        let z = rng.gen_range(-50.0f32..50.0);
        let p = rng.gen_range(0.0f32..1.0);
        let (loss, grad) = fonduer_nn::bce_with_logit(z, p);
        assert!(loss >= -1e-5, "{}", loss);
        assert!(loss.is_finite());
        assert!((-1.0..=1.0).contains(&grad));
    }
}

#[test]
fn normalized_gold_matches_span_extraction() {
    let mut rng = StdRng::seed_from_u64(0xFA);
    for _ in 0..CASES {
        let words: Vec<String> = (0..rng.gen_range(1..6)).map(|_| word(&mut rng)).collect();
        // A value written into a document and re-extracted as a span
        // normalizes to the same string the gold KB stores.
        let raw = words.join(" ");
        let mut b = DocumentBuilder::new("t", DocFormat::Html);
        let sec = b.section();
        let tb = b.text_block(sec);
        let p = b.paragraph(ContextRef::TextBlock(tb));
        let sd = fonduer_nlp::preprocess_sentence(&raw, &Default::default());
        let n = sd.words.len() as u32;
        b.sentence(p, sd);
        let d = b.finish();
        if n > 0 {
            let span = Span::new(fonduer_datamodel::SentenceId(0), 0, n);
            assert_eq!(
                span.normalized_text(&d),
                fonduer_synth::normalize_value(&raw)
            );
        }
    }
}
