//! Property-based tests over the core data structures and invariants,
//! spanning crates: generated documents always validate, tokenization
//! preserves offsets, alignment is sound, sparse representations agree,
//! the generative model stays calibrated, and scopes nest.

use fonduer::prelude::*;
use fonduer_datamodel::{assert_valid, ContextRef, DocumentBuilder, SentenceData};
use fonduer_features::{CooMatrix, LilMatrix, SparseAccess};
use proptest::prelude::*;

/// Strategy: a word of 1-8 alphanumeric characters.
fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9°%$-]{1,8}").unwrap()
}

/// Strategy: free text made of words, punctuation, numbers, whitespace.
fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 .,;:()\\-~≤°]{0,120}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_offsets_always_slice_back(s in text()) {
        for tok in fonduer_nlp::tokenize(&s) {
            prop_assert_eq!(&s[tok.start as usize..tok.end as usize], tok.text.as_str());
            prop_assert!(!tok.text.is_empty());
            prop_assert!(!tok.text.chars().next().unwrap().is_whitespace());
        }
    }

    #[test]
    fn tokens_are_monotone_and_disjoint(s in text()) {
        let toks = fonduer_nlp::tokenize(&s);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn sentence_splitter_covers_text(s in text()) {
        // Every sentence range is in bounds and ordered.
        let spans = fonduer_nlp::split_sentences(&s);
        let mut prev_end = 0;
        for (a, b) in spans {
            prop_assert!(a <= b && b <= s.len());
            prop_assert!(a >= prev_end);
            prev_end = b;
        }
    }

    #[test]
    fn built_documents_always_validate(
        rows in 1u32..5,
        cols in 1u32..5,
        sentences in proptest::collection::vec(
            proptest::collection::vec(word(), 1..6), 1..6),
    ) {
        let mut b = DocumentBuilder::new("prop", DocFormat::Html);
        let sec = b.section();
        let tb = b.text_block(sec);
        let p = b.paragraph(ContextRef::TextBlock(tb));
        for words in &sentences {
            b.sentence(p, SentenceData::from_words(words));
        }
        let t = b.table(sec, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let cell = b.cell_at(t, r, c);
                let cp = b.paragraph(ContextRef::Cell(cell));
                b.sentence(cp, SentenceData::from_words(&[format!("c{r}x{c}")]));
            }
        }
        let d = b.finish();
        assert_valid(&d);
        // Traversal invariants: every cell sentence resolves to its table.
        for sid in d.sentence_ids() {
            if let Some(cell) = d.cell_of_sentence(sid) {
                prop_assert_eq!(d.cell(cell).table, fonduer_datamodel::TableId(0));
            }
        }
    }

    #[test]
    fn parse_document_never_panics_and_validates(html in "[A-Za-z0-9 <>/=\"tdrhp]{0,300}") {
        // Arbitrary tag soup must parse into a *valid* document.
        let d = parse_document("soup", &html, DocFormat::Html, &Default::default());
        assert_valid(&d);
    }

    #[test]
    fn alignment_is_injective_and_correct(
        original in proptest::collection::vec(word(), 0..30),
        drop_mask in proptest::collection::vec(any::<bool>(), 0..30),
    ) {
        // Converted = original with some words dropped: every mapped index
        // must point at an equal word, and mapping must be injective.
        let converted: Vec<String> = original
            .iter()
            .zip(drop_mask.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &drop)| !drop)
            .map(|(w, _)| w.clone())
            .collect();
        let a = fonduer_parser::align_words(&original, &converted);
        let mut seen = std::collections::HashSet::new();
        for (i, m) in a.mapping.iter().enumerate() {
            if let Some(j) = m {
                prop_assert_eq!(&converted[i], &original[*j]);
                prop_assert!(seen.insert(*j), "mapping must be injective");
            }
        }
    }

    #[test]
    fn sparse_representations_agree(
        entries in proptest::collection::vec((0usize..50, 0u32..64, -2.0f32..2.0), 0..200)
    ) {
        prop_assume!(!entries.is_empty());
        let mut lil = LilMatrix::new();
        let mut coo = CooMatrix::new();
        let mut max_row = 0;
        for &(r, c, v) in &entries {
            lil.set(r, c, v);
            coo.push(r, c, v);
            max_row = max_row.max(r);
        }
        for r in 0..=max_row {
            prop_assert_eq!(lil.row_of(r), coo.row_of(r), "row {}", r);
        }
        prop_assert_eq!(coo.to_lil().row_of(max_row), lil.row_of(max_row));
    }

    #[test]
    fn generative_marginals_are_probabilities(
        votes in proptest::collection::vec(
            proptest::collection::vec(-1i8..=1, 4), 1..100)
    ) {
        let n = votes.len();
        let mut lm = LabelMatrix::zeros(n, 4);
        for (i, row) in votes.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                lm.set(i, j, v);
            }
        }
        let gm = GenerativeModel::fit(&lm, &GenerativeOptions::default());
        for p in gm.predict(&lm) {
            prop_assert!((0.0..=1.0).contains(&p), "{}", p);
            prop_assert!(p.is_finite());
        }
        for a in &gm.accuracies {
            prop_assert!((0.5..=0.98).contains(a));
        }
    }

    #[test]
    fn label_matrix_metrics_bounded(
        votes in proptest::collection::vec(
            proptest::collection::vec(-1i8..=1, 3), 1..50)
    ) {
        let mut lm = LabelMatrix::zeros(votes.len(), 3);
        for (i, row) in votes.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                lm.set(i, j, v);
            }
        }
        for j in 0..3 {
            let (cov, ovl, cfl) = (lm.coverage(j), lm.overlap(j), lm.conflict(j));
            prop_assert!((0.0..=1.0).contains(&cov));
            prop_assert!(ovl <= cov + 1e-12, "overlap {} > coverage {}", ovl, cov);
            prop_assert!(cfl <= ovl + 1e-12, "conflict {} > overlap {}", cfl, ovl);
        }
    }

    #[test]
    fn bce_loss_nonnegative_and_grad_bounded(z in -50.0f32..50.0, p in 0.0f32..1.0) {
        let (loss, grad) = fonduer_nn::bce_with_logit(z, p);
        prop_assert!(loss >= -1e-5, "{}", loss);
        prop_assert!(loss.is_finite());
        prop_assert!((-1.0..=1.0).contains(&grad));
    }

    #[test]
    fn normalized_gold_matches_span_extraction(words in proptest::collection::vec(word(), 1..6)) {
        // A value written into a document and re-extracted as a span
        // normalizes to the same string the gold KB stores.
        let raw = words.join(" ");
        let mut b = DocumentBuilder::new("t", DocFormat::Html);
        let sec = b.section();
        let tb = b.text_block(sec);
        let p = b.paragraph(ContextRef::TextBlock(tb));
        let sd = fonduer_nlp::preprocess_sentence(&raw, &Default::default());
        let n = sd.words.len() as u32;
        b.sentence(p, sd);
        let d = b.finish();
        if n > 0 {
            let span = Span::new(fonduer_datamodel::SentenceId(0), 0, n);
            prop_assert_eq!(
                span.normalized_text(&d),
                fonduer_synth::normalize_value(&raw)
            );
        }
    }
}
