//! End-to-end telemetry check: one `run_task` over a synthetic electronics
//! corpus must emit spans for all five pipeline stages and non-zero counters
//! from the parser, candidate, feature, and supervision layers.

use fonduer::observe;
use fonduer::prelude::*;
use fonduer_core::domains::electronics;

#[test]
fn run_task_emits_stage_spans_and_layer_counters() {
    observe::reset();

    // Parsing the synthetic corpus already exercises the parser/nlp layers.
    let ds = Domain::Electronics.generate(16, 7);
    let relation = "max_ce_voltage";
    let task = Task {
        extractor: electronics::extractor(&ds, relation, ContextScope::Document)
            .with_throttler(electronics::default_throttler(relation)),
        lfs: electronics::lfs(relation),
    };
    let cfg = PipelineConfig::default();
    let out = run_task(&ds.corpus, &ds.gold, &task, &cfg);
    assert!(!out.candidates.candidates.is_empty());

    let snap = observe::snapshot();

    assert!(snap.spans.contains_key("run_task"), "missing run_task span");
    for stage in ["candgen", "featurize", "supervise", "train", "infer"] {
        let path = format!("run_task.{stage}");
        let span = snap
            .span(&path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        assert!(span.count >= 1, "{path} recorded no calls");
    }

    // Non-zero counters from at least four instrumented crates.
    for prefix in ["parser.", "candgen.", "features.", "supervision."] {
        let total: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum();
        assert!(total > 0, "no non-zero counters under {prefix}");
    }
    assert!(snap.counter("infer.candidates") > 0);
    assert!(snap.counter("train.epochs") > 0);

    // The Timings view derived from the same spans stays self-consistent.
    assert!(out.timings.total_ms() >= out.timings.candgen_ms());

    // Both report renderers work off this snapshot.
    let human = observe::render_human(&snap);
    assert!(human.contains("run_task.candgen") || human.contains("candgen"));
    let jsonl = observe::render_jsonl(&snap);
    assert!(jsonl
        .lines()
        .any(|l| l.contains("\"path\":\"run_task.infer\"")));
}
