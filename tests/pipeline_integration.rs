//! Cross-crate integration tests: compose the public APIs of every crate
//! by hand — parse → extract → featurize → supervise → learn → evaluate —
//! rather than going through `fonduer_core::run_task`, proving the pieces
//! fit together the way a downstream user would assemble them.

use fonduer::prelude::*;
use fonduer_core::domains;
use fonduer_features::SparseAccess;
use fonduer_learning::prepare;
use fonduer_nlp::HashedVocab;

/// A small two-document corpus with one relation expressed document-level.
fn corpus() -> Corpus {
    let sheets = [
        (
            "a",
            r#"<h1>SMBT3904</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>200</td></tr>
               <tr><td>Junction temperature</td><td>150</td></tr></table>"#,
        ),
        (
            "b",
            r#"<h1>BC547</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>100</td></tr>
               <tr><td>DC current gain</td><td>300</td></tr></table>"#,
        ),
    ];
    let mut c = Corpus::new("integration");
    for (name, html) in sheets {
        c.add(parse_document(
            name,
            html,
            DocFormat::Pdf,
            &Default::default(),
        ));
    }
    c
}

fn extractor() -> CandidateExtractor {
    CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new(
                "part",
                Box::new(DictionaryMatcher::new(["SMBT3904", "BC547"])),
            ),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document)
}

fn lfs() -> Vec<LabelingFunction> {
    vec![
        LabelingFunction::new("collector_row", Modality::Tabular, |doc, cand| {
            let row = domains::row_words(doc, domains::arg(cand, 1));
            if row.is_empty() {
                ABSTAIN
            } else if fonduer_nlp::contains_word(&row, "collector") {
                TRUE
            } else {
                FALSE
            }
        }),
        LabelingFunction::new("aligned_collector", Modality::Visual, |doc, cand| {
            let al = domains::h_aligned_lemmas(doc, domains::arg(cand, 1));
            if fonduer_nlp::contains_word(&al, "collector") {
                TRUE
            } else {
                ABSTAIN
            }
        }),
    ]
}

#[test]
fn manual_pipeline_composition() {
    let corpus = corpus();
    // Phase 2: candidates.
    let cands = extractor().extract(&corpus);
    assert_eq!(cands.len(), 4); // a: 200,150; b: 100,300; never cross-doc
                                // Phase 3a: featurization.
    let featurizer = Featurizer::new(FeatureConfig::all());
    let feats = featurizer.featurize(&corpus, &cands);
    assert_eq!(feats.matrix.n_rows(), cands.len());
    assert!(feats.stats.hits > 0, "mention cache must be exercised");
    // Phase 3b: supervision.
    let lf_vec = lfs();
    let refs: Vec<&LabelingFunction> = lf_vec.iter().collect();
    let lm = LabelMatrix::apply(&refs, &corpus, &cands);
    assert_eq!(lm.n_rows(), cands.len());
    assert!(lm.total_coverage() > 0.9);
    let gm = GenerativeModel::fit(&lm, &GenerativeOptions::default());
    let marginals = gm.predict(&lm);
    // The collector-current rows are labeled positive, the rest negative.
    for (i, cand) in cands.candidates.iter().enumerate() {
        let doc = corpus.doc(cand.doc);
        let is_current = matches!(cand.arg_texts(doc)[1].as_str(), "200" | "100");
        assert_eq!(marginals[i] > 0.5, is_current, "candidate {i}");
    }
    // Phase 3c: discriminative training.
    let vocab = HashedVocab::new(512);
    let prepared = prepare(&corpus, &cands, &feats, &vocab, 6);
    let targets: Vec<f32> = marginals.iter().map(|&m| m as f32).collect();
    let mut model = FonduerModel::new(
        ModelConfig {
            epochs: 12,
            ..Default::default()
        },
        prepared.vocab_size,
        prepared.n_features,
        prepared.arity,
    );
    model.fit(&prepared.inputs, &targets);
    let probs = model.predict(&prepared.inputs);
    for (i, cand) in cands.candidates.iter().enumerate() {
        let doc = corpus.doc(cand.doc);
        let is_current = matches!(cand.arg_texts(doc)[1].as_str(), "200" | "100");
        assert_eq!(probs[i] > 0.5, is_current, "model on candidate {i}");
    }
    // Output: the KB.
    let tuples = cands.candidates.iter().zip(&probs).map(|(c, &p)| {
        let doc = corpus.doc(c.doc);
        ((doc.name.clone(), c.arg_texts(doc)), p)
    });
    let kb = KnowledgeBase::from_marginals(
        "has_collector_current",
        &["part".into(), "current".into()],
        tuples,
        0.5,
    );
    assert_eq!(kb.len(), 2);
    assert!(kb.to_tsv().contains("smbt3904\t200"));
    assert!(kb.to_tsv().contains("bc547\t100"));
}

#[test]
fn run_task_agrees_with_manual_composition() {
    let corpus = corpus();
    let task = fonduer::core::Task {
        extractor: extractor(),
        lfs: lfs(),
    };
    let cfg = PipelineConfig {
        train_frac: 1.0,
        ..Default::default()
    };
    let gold = GoldKb::new();
    let out = fonduer::core::run_task(&corpus, &gold, &task, &cfg);
    assert_eq!(out.candidates.len(), 4);
    let kb = out.kb.tuple_set();
    assert!(kb.contains(&("a".to_string(), vec!["smbt3904".into(), "200".into()])));
    assert!(kb.contains(&("b".to_string(), vec!["bc547".into(), "100".into()])));
    assert_eq!(kb.len(), 2);
}

#[test]
fn synthetic_domains_round_trip_through_pipeline() {
    // Smallest-possible end-to-end smoke across all four domains.
    use fonduer_synth::Domain;
    for domain in Domain::ALL {
        let ds = domain.generate(12, 5);
        assert!(!ds.gold.is_empty(), "{domain:?} gold");
        let rel = ds.relation_names[0].clone();
        let task = match domain {
            Domain::Electronics => fonduer::core::Task {
                extractor: domains::electronics::extractor(&ds, &rel, ContextScope::Document),
                lfs: domains::electronics::lfs(&rel),
            },
            Domain::Ads => fonduer::core::Task {
                extractor: domains::ads::extractor(&ds, &rel, ContextScope::Document),
                lfs: domains::ads::lfs("ad_price"),
            },
            Domain::Paleo => fonduer::core::Task {
                extractor: domains::paleo::extractor(&ds, &rel, ContextScope::Document),
                lfs: domains::paleo::lfs(&rel),
            },
            Domain::Genomics => fonduer::core::Task {
                extractor: domains::genomics::extractor(&ds, &rel, ContextScope::Document),
                lfs: domains::genomics::lfs("snp_phenotype"),
            },
        };
        let out = fonduer::core::run_task(&ds.corpus, &ds.gold, &task, &Default::default());
        assert!(
            !out.candidates.is_empty(),
            "{domain:?}/{rel} extracted no candidates"
        );
        assert!(out.label_coverage > 0.0, "{domain:?}/{rel} no LF coverage");
        assert!(
            out.marginals.iter().all(|p| (0.0..=1.0).contains(p)),
            "{domain:?}/{rel} marginals out of range"
        );
    }
}

#[test]
fn oracle_scopes_nest_on_every_domain() {
    use fonduer_synth::Domain;
    for domain in [Domain::Electronics, Domain::Genomics] {
        let ds = domain.generate(10, 3);
        let rel = ds.relation_names[0].clone();
        let build = |scope| match domain {
            Domain::Electronics => domains::electronics::extractor(&ds, &rel, scope),
            _ => domains::genomics::extractor(&ds, &rel, scope),
        };
        let sent = reachable_tuples(&ds.corpus, &build(ContextScope::Sentence));
        let table = reachable_tuples(&ds.corpus, &build(ContextScope::Table));
        let page = reachable_tuples(&ds.corpus, &build(ContextScope::Page));
        let doc = reachable_tuples(&ds.corpus, &build(ContextScope::Document));
        assert!(sent.is_subset(&table), "{domain:?}");
        assert!(table.is_subset(&page), "{domain:?}");
        assert!(page.is_subset(&doc), "{domain:?}");
    }
}
