//! Golden equivalence between the two featurization paths.
//!
//! The interned fast path (`Featurizer::featurize`, producing a
//! `FeatureVocab` + shared CSR matrix) and the debug string path
//! (`Featurizer::features_of`, producing per-candidate `Vec<String>`) must
//! describe the same feature space: re-interning the string path's output
//! in candidate order reproduces the fast path's vocabulary and matrix
//! byte-for-byte. This pins the compat contract — tooling that consumes
//! feature strings sees exactly what the learner trains on.

use fonduer::prelude::*;
use fonduer_core::domains;
use fonduer_features::{CsrMatrix, FeatureVocab, SparseAccess};
use fonduer_synth::{generate_electronics, ElectronicsConfig};

#[test]
fn string_path_reproduces_interned_artifacts_byte_identically() {
    let ds = generate_electronics(&ElectronicsConfig {
        n_docs: 12,
        ..Default::default()
    });
    let task = &domains::electronics::tasks(&ds)[0];
    let cands = task.extractor.extract(&ds.corpus);
    assert!(!cands.candidates.is_empty());
    let fz = Featurizer::new(FeatureConfig::all());
    let fast = fz.featurize(&ds.corpus, &cands);

    // Rebuild vocabulary and matrix from the string path, exactly as the
    // pre-interning pipeline did: intern each emission in order, then
    // sort + dedup the row (first occurrence wins for ordering; ids are
    // unique after dedup so last-vs-first is moot for presence features).
    let mut vocab = FeatureVocab::new();
    let mut matrix = CsrMatrix::new();
    for c in &cands.candidates {
        let doc = ds.corpus.doc(c.doc);
        let mut row: Vec<u32> = fz
            .features_of(doc, c)
            .iter()
            .map(|name| vocab.intern(name))
            .collect();
        row.sort_unstable();
        row.dedup();
        matrix.push_ids(row);
    }

    // Byte-identical vocabulary: same size, same name at every column.
    assert_eq!(vocab.len(), fast.vocab.len());
    for col in 0..vocab.len() as u32 {
        assert_eq!(vocab.name(col), fast.vocab.name(col), "col {col}");
        assert_eq!(
            vocab.modality_idx(col),
            fast.vocab.modality_idx(col),
            "col {col} modality"
        );
    }
    // Byte-identical CSR arrays.
    assert_eq!(matrix, *fast.matrix);
    assert_eq!(matrix.n_rows(), cands.candidates.len());
}

#[test]
fn feature_names_match_the_string_path_per_row() {
    let ds = generate_electronics(&ElectronicsConfig {
        n_docs: 6,
        ..Default::default()
    });
    let task = &domains::electronics::tasks(&ds)[0];
    let cands = task.extractor.extract(&ds.corpus);
    let fz = Featurizer::new(FeatureConfig::all());
    let fast = fz.featurize(&ds.corpus, &cands);
    for (i, c) in cands.candidates.iter().enumerate() {
        let doc = ds.corpus.doc(c.doc);
        let mut strings = fz.features_of(doc, c);
        strings.sort_unstable();
        strings.dedup();
        let mut resolved = fast.feature_names(i);
        resolved.sort_unstable();
        assert_eq!(strings, resolved, "row {i}");
        // The bounded sample is a prefix of the full resolution.
        assert_eq!(
            fast.feature_sample(i, 3),
            fast.feature_names(i)[..3.min(resolved.len())]
        );
    }
}
