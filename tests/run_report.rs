//! [`RunReport`] end-to-end: run a real session over a synthetic corpus
//! and check that the report's per-document stage timings reconcile with
//! the span registry, the critical path points at a stage that actually
//! ran, and both renderings stay well-formed.
//!
//! These tests mutate process-global observe state, so they serialize on
//! a file-local lock.

use fonduer::observe;
use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_core::{PipelineSession, StageId};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pin `FONDUER_THREADS` for the duration of one test (the CI matrix runs
/// the whole suite under 1 and 4, which would override the width these
/// tests assert on). Safe because all tests here hold the file lock.
struct EnvThreads(Option<String>);

impl EnvThreads {
    fn pin(n: usize) -> Self {
        let prev = std::env::var("FONDUER_THREADS").ok();
        std::env::set_var("FONDUER_THREADS", n.to_string());
        EnvThreads(prev)
    }
}

impl Drop for EnvThreads {
    fn drop(&mut self) {
        match &self.0 {
            Some(v) => std::env::set_var("FONDUER_THREADS", v),
            None => std::env::remove_var("FONDUER_THREADS"),
        }
    }
}

fn run_session(n_threads: usize) -> fonduer_core::RunReport {
    let ds = Domain::Electronics.generate(24, 7);
    let relation = "has_collector_current";
    let extractor = electronics::extractor(&ds, relation, ContextScope::Document)
        .with_throttler(electronics::default_throttler(relation));
    let lfs = electronics::lfs(relation);
    let cfg = PipelineConfig::builder()
        .n_threads(n_threads)
        .build()
        .expect("config is valid");
    let mut session = PipelineSession::from_parts(&ds.corpus, &ds.gold, &extractor, &lfs, cfg)
        .expect("session inputs are valid");
    session.output().expect("pipeline runs");
    session.run_report()
}

#[test]
fn report_joins_stages_cache_pool_and_docs() {
    let _g = lock();
    observe::reset();
    let report = run_session(1);

    // Every doc-timed stage produced per-document rows; top-K is ordered.
    let top = report.top_slowest_docs(5);
    assert!(!top.is_empty(), "no documents timed");
    assert!(top.len() <= 5);
    for pair in top.windows(2) {
        assert!(pair[0].total_ns >= pair[1].total_ns, "top-K not sorted");
    }
    for d in top {
        assert!(d.total_ns > 0);
        assert!(!d.stage_ns.is_empty());
    }

    // The report's stage rows cover the five timed stages and the cold run
    // computed (not cache-hit) each of them.
    let names: Vec<&str> = report.stages.iter().map(|s| s.stage).collect();
    assert_eq!(
        names,
        ["candgen", "featurize", "supervise", "train", "infer"]
    );
    for s in &report.stages {
        assert!(s.span_count >= 1, "{} never ran a span", s.stage);
    }
    assert_eq!(report.cache.stage(StageId::Candidates).misses, 1);
    assert_eq!(report.cache.stage(StageId::Featurize).misses, 1);

    // Critical path names a stage with non-zero wall time.
    let cp = report.critical_path();
    assert!(cp.total_us > 0);
    assert!(cp.stage_us > 0);
    assert!(cp.fraction > 0.0 && cp.fraction <= 1.0);

    // Renderings: text mentions the critical path; JSONL parses per line.
    let text = report.render_text();
    assert!(text.contains("critical path:"));
    assert!(text.contains("slowest documents"));
    for line in report.render_jsonl().lines() {
        observe::json::parse(line).unwrap_or_else(|e| panic!("bad report line ({e}): {line}"));
    }
}

/// Acceptance: at one thread the per-document stage sums must land within
/// 10% of the stage's aggregate span time (the doc table is carved out of
/// exactly that span, minus per-candidate bookkeeping between documents).
#[test]
fn doc_sums_match_stage_spans_sequential() {
    let _g = lock();
    let _env = EnvThreads::pin(1);
    observe::reset();
    let report = run_session(1);

    for cov in report.stage_coverage() {
        assert!(
            cov.doc_sum_ns > 0,
            "{}: no per-doc time recorded",
            cov.stage
        );
        assert_eq!(cov.worker_ns, 0, "{}: no pool at 1 thread", cov.stage);
        assert!(cov.span_total_ns > 0, "{}: leaf span missing", cov.stage);
        let ratio = cov.ratio();
        assert!(
            (0.9..=1.02).contains(&ratio),
            "{}: doc sum {}ns vs span {}ns (ratio {ratio:.3}) outside 10%",
            cov.stage,
            cov.doc_sum_ns,
            cov.span_total_ns
        );
    }
}

/// At higher thread counts per-document time is measured inside workers,
/// so the universal bound is: doc sums never exceed the measured worker
/// time (plus timer noise) and still account for most of it.
#[test]
fn doc_sums_bounded_by_worker_spans_parallel() {
    let _g = lock();
    let _env = EnvThreads::pin(4);
    observe::reset();
    let report = run_session(4);

    for cov in report.stage_coverage() {
        assert!(
            cov.doc_sum_ns > 0,
            "{}: no per-doc time recorded",
            cov.stage
        );
        let denom = cov.worker_ns.max(cov.span_total_ns);
        assert!(denom > 0, "{}: no span time at all", cov.stage);
        let ratio = cov.ratio();
        assert!(
            ratio <= 1.05,
            "{}: doc sum {}ns exceeds measured work {}ns (ratio {ratio:.3})",
            cov.stage,
            cov.doc_sum_ns,
            denom
        );
        assert!(
            ratio >= 0.5,
            "{}: doc sum {}ns accounts for under half of {}ns",
            cov.stage,
            cov.doc_sum_ns,
            denom
        );
    }
}
