//! Invalidation semantics of the staged [`PipelineSession`]: which input
//! edits dirty which cached artifacts, verified through the per-stage
//! cache-hit counters, plus the golden equivalence between the one-shot
//! `run_task` and a session driven over the same inputs.

use fonduer::prelude::*;
use fonduer_core::domains;
use fonduer_core::{ConfigError, Error, PipelineSession, StageId, Task};
use fonduer_features::SparseAccess;

fn corpus() -> Corpus {
    let sheets = [
        (
            "a",
            r#"<h1>SMBT3904</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>200</td></tr>
               <tr><td>Junction temperature</td><td>150</td></tr></table>"#,
        ),
        (
            "b",
            r#"<h1>BC547</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>100</td></tr>
               <tr><td>DC current gain</td><td>300</td></tr></table>"#,
        ),
        (
            "c",
            r#"<h1>PN2222A</h1>
               <table><tr><th>Parameter</th><th>Value</th></tr>
               <tr><td>Collector current</td><td>600</td></tr>
               <tr><td>Storage temperature</td><td>150</td></tr></table>"#,
        ),
    ];
    let mut c = Corpus::new("session-tests");
    for (name, html) in sheets {
        c.add(parse_document(
            name,
            html,
            DocFormat::Pdf,
            &Default::default(),
        ));
    }
    c
}

fn extractor() -> CandidateExtractor {
    CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new(
                "part",
                Box::new(DictionaryMatcher::new(["SMBT3904", "BC547", "PN2222A"])),
            ),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document)
}

fn collector_lf() -> LabelingFunction {
    LabelingFunction::new("collector_row", Modality::Tabular, |doc, cand| {
        let row = domains::row_words(doc, domains::arg(cand, 1));
        if row.is_empty() {
            ABSTAIN
        } else if fonduer_nlp::contains_word(&row, "collector") {
            TRUE
        } else {
            FALSE
        }
    })
}

fn aligned_lf() -> LabelingFunction {
    LabelingFunction::new("aligned_collector", Modality::Visual, |doc, cand| {
        let al = domains::h_aligned_lemmas(doc, domains::arg(cand, 1));
        if fonduer_nlp::contains_word(&al, "collector") {
            TRUE
        } else {
            ABSTAIN
        }
    })
}

fn gold() -> GoldKb {
    let mut g = GoldKb::new();
    g.add("has_collector_current", "a", &["SMBT3904", "200"]);
    g.add("has_collector_current", "b", &["BC547", "100"]);
    g.add("has_collector_current", "c", &["PN2222A", "600"]);
    g
}

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .train_frac(1.0)
        .learner(Learner::LogReg)
        .features(FeatureConfig::all())
        .build()
        .unwrap()
}

fn hits(s: &PipelineSession, id: StageId) -> u64 {
    s.stats().stage(id).hits
}

fn misses(s: &PipelineSession, id: StageId) -> u64 {
    s.stats().stage(id).misses
}

#[test]
fn lf_change_reuses_candidate_and_feature_artifacts() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs_v1 = vec![collector_lf()];
    let lfs_v2 = vec![collector_lf(), aligned_lf()];

    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs_v1, cfg()).unwrap();
    let cold = s.output().unwrap();
    // Cold run: every stage computes, nothing hits.
    assert_eq!(s.stats().hits(), 0);
    assert_eq!(s.stats().misses(), 6);

    // Swapping the LF library dirties supervision and downstream only.
    s.reset_stats();
    s.set_lfs(&lfs_v2);
    let warm = s.output().unwrap();
    assert_eq!(hits(&s, StageId::Candidates), 1, "candgen must be reused");
    assert_eq!(hits(&s, StageId::Featurize), 1, "featurize must be reused");
    assert_eq!(misses(&s, StageId::Supervise), 1);
    assert_eq!(misses(&s, StageId::Train), 1);
    assert_eq!(misses(&s, StageId::Infer), 1);
    assert_eq!(misses(&s, StageId::Evaluate), 1);
    // Reused stages report zero time in the new traversal.
    assert_eq!(warm.timings.candgen_ms(), 0.0);
    assert_eq!(warm.timings.featurize_ms(), 0.0);
    assert_eq!(warm.candidates, cold.candidates);

    // Setting the LFs back re-hits the supervision cache: staleness is
    // key-based, not flag-based.
    s.reset_stats();
    s.set_lfs(&lfs_v1);
    s.output().unwrap();
    assert_eq!(s.stats().hits(), 2, "candgen + featurize hit");
    assert_eq!(misses(&s, StageId::Supervise), 1, "v1 artifact was evicted");
}

#[test]
fn unchanged_rerun_hits_every_stage() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs = vec![collector_lf(), aligned_lf()];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, cfg()).unwrap();
    let first = s.output().unwrap();
    s.reset_stats();
    let second = s.output().unwrap();
    assert_eq!(s.stats().hits(), 6, "idempotent rerun must be all hits");
    assert_eq!(s.stats().misses(), 0);
    assert_eq!(first.marginals, second.marginals);
    assert_eq!(first.kb.to_tsv(), second.kb.to_tsv());

    // invalidate() drops everything.
    s.invalidate();
    s.reset_stats();
    s.output().unwrap();
    assert_eq!(s.stats().misses(), 6);
}

#[test]
fn extractor_change_dirties_every_stage() {
    let corpus = corpus();
    let gold = gold();
    let ex_v1 = extractor();
    // Narrower dictionary: different matcher fingerprint.
    let ex_v2 = CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new(
                "part",
                Box::new(DictionaryMatcher::new(["SMBT3904", "BC547"])),
            ),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document);
    let lfs = vec![collector_lf()];

    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex_v1, &lfs, cfg()).unwrap();
    let out_v1 = s.output().unwrap();
    s.reset_stats();
    s.set_extractor(&ex_v2);
    let out_v2 = s.output().unwrap();
    assert_eq!(s.stats().hits(), 0, "matcher change must dirty everything");
    assert_eq!(s.stats().misses(), 6);
    assert!(out_v2.candidates.len() < out_v1.candidates.len());
}

#[test]
fn feature_config_change_keeps_candidates_and_supervision() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs = vec![collector_lf(), aligned_lf()];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, cfg()).unwrap();
    s.output().unwrap();
    s.reset_stats();
    s.set_feature_config(FeatureConfig {
        textual: false,
        structural: true,
        tabular: true,
        visual: true,
        hashing_bits: 0,
    });
    s.output().unwrap();
    assert_eq!(hits(&s, StageId::Candidates), 1);
    assert_eq!(
        hits(&s, StageId::Supervise),
        1,
        "supervision is feature-free"
    );
    assert_eq!(misses(&s, StageId::Featurize), 1);
    assert_eq!(misses(&s, StageId::Train), 1);
    assert_eq!(misses(&s, StageId::Infer), 1);
}

#[test]
fn threshold_change_recomputes_only_evaluation() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs = vec![collector_lf()];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, cfg()).unwrap();
    s.output().unwrap();
    s.reset_stats();
    s.set_threshold(0.8).unwrap();
    s.output().unwrap();
    assert_eq!(s.stats().hits(), 5, "all stages up to inference reused");
    assert_eq!(misses(&s, StageId::Evaluate), 1);
    assert_eq!(s.stats().misses(), 1);
}

#[test]
fn session_output_matches_run_task_exactly() {
    let corpus = corpus();
    let gold = gold();
    let task = Task {
        extractor: extractor(),
        lfs: vec![collector_lf(), aligned_lf()],
    };
    let cfg = cfg();
    let via_run_task = fonduer::core::run_task(&corpus, &gold, &task, &cfg);
    let mut s = PipelineSession::new(&corpus, &gold, &task, cfg).unwrap();
    let via_session = s.output().unwrap();

    assert_eq!(via_session.candidates, via_run_task.candidates);
    assert_eq!(via_session.marginals, via_run_task.marginals);
    assert_eq!(via_session.kb.to_tsv(), via_run_task.kb.to_tsv());
    assert_eq!(via_session.train_docs, via_run_task.train_docs);
    assert_eq!(via_session.test_docs, via_run_task.test_docs);
    assert_eq!(via_session.metrics, via_run_task.metrics);
    assert_eq!(via_session.label_coverage, via_run_task.label_coverage);
    assert_eq!(via_session.lf_diagnostics, via_run_task.lf_diagnostics);
}

#[test]
fn invalid_configs_are_rejected_by_the_session() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs = vec![collector_lf()];
    let bad = PipelineConfig {
        threshold: 1.5,
        ..Default::default()
    };
    match PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, bad).err() {
        Some(Error::Config(ConfigError::Threshold { value })) => assert_eq!(value, 1.5),
        other => panic!("expected threshold rejection, got {other:?}"),
    }
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, cfg()).unwrap();
    assert!(s.set_threshold(-0.2).is_err());
    assert!(s.set_split(2.0, 1).is_err());
    // A failed setter leaves the old (valid) config in place.
    assert!(s.config().validate().is_ok());
}

#[test]
fn degenerate_inputs_surface_typed_errors() {
    let corpus = corpus();
    let gold = gold();
    // Matcher that matches nothing: no candidates at all.
    let ex_none = CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new("part", Box::new(DictionaryMatcher::new(["NO_SUCH_PART"]))),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document);
    let lfs = vec![collector_lf()];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex_none, &lfs, cfg()).unwrap();
    match s.output().err() {
        Some(Error::NoCandidates { relation }) => {
            assert_eq!(relation, "has_collector_current")
        }
        other => panic!("expected NoCandidates, got {other:?}"),
    }

    // Candidates exist, but every LF abstains: nothing to train on.
    let ex = extractor();
    let abstainers = vec![LabelingFunction::new(
        "always_abstain",
        Modality::Textual,
        |_, _| ABSTAIN,
    )];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &abstainers, cfg()).unwrap();
    match s.output().err() {
        Some(Error::EmptyTrainingSet {
            relation,
            n_candidates,
            n_train,
        }) => {
            assert_eq!(relation, "has_collector_current");
            assert!(n_candidates > 0);
            assert_eq!(n_train, n_candidates, "train_frac is 1.0");
        }
        other => panic!("expected EmptyTrainingSet, got {other:?}"),
    }

    // The lenient run_task keeps its historical permissive behavior on the
    // same degenerate inputs.
    let task = Task {
        extractor: ex_none,
        lfs: vec![collector_lf()],
    };
    let out = fonduer::core::run_task(&corpus, &gold, &task, &cfg());
    assert!(out.candidates.is_empty());
    assert!(out.marginals.is_empty());
}

#[test]
fn stage_methods_expose_intermediate_artifacts() {
    let corpus = corpus();
    let gold = gold();
    let ex = extractor();
    let lfs = vec![collector_lf(), aligned_lf()];
    let mut s = PipelineSession::from_parts(&corpus, &gold, &ex, &lfs, cfg()).unwrap();
    let n = s.candidates().unwrap().len();
    assert!(n > 0);
    assert_eq!(s.featurize().unwrap().matrix.n_rows(), n);
    let sup = s.supervise().unwrap();
    assert_eq!(sup.train_idx.len(), n, "train_frac 1.0 trains on all");
    assert_eq!(sup.train_marginals.len(), n);
    assert!(sup.label_coverage > 0.0);
    assert_eq!(sup.lf_diagnostics.rows.len(), 2);
    assert_eq!(s.infer().unwrap().len(), n);
    let m = *s.evaluate().unwrap();
    assert!(m.f1 >= 0.0);
    // Stats line mentions every stage.
    let line = s.stats().to_line();
    for id in StageId::ALL {
        assert!(line.contains(id.name()), "{line}");
    }
}
