//! Iterative KBC with a [`PipelineSession`] (paper §4.3, Appendix C): run
//! the pipeline once, improve the labeling functions, and re-run — the
//! session serves candidate generation and featurization from its artifact
//! cache, so the second iteration pays only for supervision, training, and
//! inference.
//!
//! Prints machine-checkable lines (`warm_cache_hits=...`) that CI greps.
//!
//! Run with: `cargo run --release --example incremental`

use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_core::{PipelineSession, StageId};
use fonduer_synth::{generate_electronics, ElectronicsConfig};

fn main() {
    let ds = generate_electronics(&ElectronicsConfig {
        n_docs: 60,
        ..Default::default()
    });
    let relation = "has_collector_current";
    let extractor = electronics::extractor(&ds, relation, ContextScope::Document)
        .with_throttler(electronics::default_throttler(relation));

    // Iteration 1: the full LF library, cold — every stage computes.
    let full_lfs = electronics::lfs(relation);
    // Iteration 2: the refined library an error-analysis pass would
    // produce (here: drop one rule). Same candidates, same features.
    let refined_lfs: Vec<LabelingFunction> =
        electronics::lfs(relation).into_iter().skip(1).collect();

    let cfg = PipelineConfig::builder()
        .learner(Learner::LogReg)
        .features(FeatureConfig::all())
        .build()
        .expect("config is valid");

    let mut session = PipelineSession::from_parts(&ds.corpus, &ds.gold, &extractor, &full_lfs, cfg)
        .expect("session inputs are valid");

    let cold = session.output().expect("cold run");
    let cold_total = cold.timings.total();
    println!(
        "iteration 1 (cold, {} LFs): {} candidates, coverage={:.2}, F1={:.2}, total={:.1}ms",
        full_lfs.len(),
        cold.candidates.len(),
        cold.label_coverage,
        cold.metrics.f1,
        cold.timings.total_ms()
    );
    println!("  stage cache: {}", session.stats().to_line());
    print_timings(&cold.timings);

    // Swap the LF library. Candidate generation and featurization are
    // unaffected, so the session serves both from its artifact cache.
    session.reset_stats();
    session.set_lfs(&refined_lfs);
    let warm = session.output().expect("warm run");
    let warm_total = warm.timings.total();
    println!(
        "\niteration 2 (warm, {} LFs): coverage={:.2}, F1={:.2}, total={:.1}ms",
        refined_lfs.len(),
        warm.label_coverage,
        warm.metrics.f1,
        warm.timings.total_ms()
    );
    println!("  stage cache: {}", session.stats().to_line());
    print_timings(&warm.timings);

    let stats = session.stats();
    let warm_cache_hits =
        stats.stage(StageId::Candidates).hits + stats.stage(StageId::Featurize).hits;
    // CI greps this line: the warm re-supervise must reuse the candidate
    // and feature artifacts.
    println!("\nwarm_cache_hits={warm_cache_hits}");
    assert!(
        warm_cache_hits >= 2,
        "LF-only change must reuse candgen + featurize artifacts"
    );
    assert_eq!(stats.stage(StageId::Supervise).misses, 1);
    assert_eq!(stats.stage(StageId::Train).misses, 1);

    let speedup = cold_total.as_secs_f64() / warm_total.as_secs_f64().max(1e-9);
    println!("cold/warm wall-clock ratio: {speedup:.1}x");

    // Iteration 3: a revised edition of one datasheet arrives. The corpus
    // mutation dirties candgen/featurize, but their per-document shard
    // caches serve the other 59 documents — only the upserted document's
    // slices recompute before the deterministic merge.
    let revised = generate_electronics(&ElectronicsConfig {
        n_docs: 60,
        seed: 8,
        ..Default::default()
    })
    .corpus
    .doc(fonduer_datamodel::DocId::from_usize(3))
    .clone();
    let name = revised.name.clone();
    session.upsert_document(revised).expect("name is unique");
    let third = session.output().expect("upsert run");
    println!(
        "\niteration 3 (upsert {name:?}): F1={:.2}, total={:.1}ms, recomputed_docs={} of {}",
        third.metrics.f1,
        third.timings.total_ms(),
        session.recomputed_docs(),
        session.corpus().len(),
    );

    // The queryable join of everything above: stage timings, cache
    // counters, pool telemetry, and the slowest documents in one report.
    let report = session.run_report();
    println!("\n{}", report.render_text());
    // `FONDUER_TRACE=chrome` (or prom) writes the full trace/metrics dump
    // on exit; the flow events in the Chrome trace tie each pool task back
    // to the stage span that submitted it.
    fonduer_observe::emit_report();
}

fn print_timings(t: &fonduer_core::Timings) {
    println!(
        "  stage times: candgen={:.1}ms featurize={:.1}ms supervise={:.1}ms train={:.1}ms infer={:.1}ms",
        t.candgen_ms(),
        t.featurize_ms(),
        t.supervise_ms(),
        t.train_ms(),
        t.infer_ms()
    );
}
