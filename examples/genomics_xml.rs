//! The GENOMICS application (paper §5.1): native-XML GWAS papers whose
//! relations pair table mentions (SNPs, genes) with text mentions
//! (phenotypes). Every tuple is cross-context — sentence- and table-scope
//! extraction find *zero* full tuples (the `0.00#` cells of Table 2) —
//! and there is no visual modality at all.
//!
//! Run with: `cargo run --release --example genomics_xml`

use fonduer::prelude::*;
use fonduer_core::domains::genomics;
use fonduer_synth::{generate_genomics, simulate_existing_kb, GenomicsConfig};

fn main() {
    let ds = generate_genomics(&GenomicsConfig {
        n_docs: 60,
        ..Default::default()
    });
    println!(
        "GENOMICS corpus: {} XML papers, {} gold tuples, visual modality: none",
        ds.corpus.len(),
        ds.gold.total()
    );

    // Cross-context proof: restricted scopes reach nothing.
    let gold: std::collections::BTreeSet<_> =
        ds.gold.tuples("snp_phenotype").iter().cloned().collect();
    for (label, scope) in [
        ("Text", ContextScope::Sentence),
        ("Table", ContextScope::TableStrict),
        ("Document", ContextScope::Document),
    ] {
        let ex = genomics::extractor(&ds, "snp_phenotype", scope);
        let reach = reachable_tuples(&ds.corpus, &ex);
        let m = oracle_upper_bound(&reach, &gold);
        println!(
            "  scope {label:<9} reachable tuples={:<5} recall={:.2}",
            reach.len(),
            m.recall
        );
    }

    // Full pipeline + the Table 3 comparison against a simulated curated KB
    // (GWAS-Catalog-style coverage gap).
    let task = fonduer::core::Task {
        extractor: genomics::extractor(&ds, "snp_phenotype", ContextScope::Document),
        lfs: genomics::lfs("snp_phenotype"),
    };
    let mut session = PipelineSession::new(&ds.corpus, &ds.gold, &task, PipelineConfig::default())
        .expect("session inputs are valid");
    let out = session.output().expect("pipeline run");
    println!(
        "\nsnp_phenotype end-to-end: P={:.2} R={:.2} F1={:.2}",
        out.metrics.precision, out.metrics.recall, out.metrics.f1
    );

    let kb = simulate_existing_kb("GWAS Catalog (sim)", &ds.gold, "snp_phenotype", 0.55, 6, 42);
    let cmp = compare_with_existing_kb(
        &out.kb.entity_entries(),
        &ds.gold.entity_entries("snp_phenotype"),
        &kb,
    );
    println!(
        "\nvs {}: KB entries={} extracted={} coverage={:.2} accuracy={:.2} new-correct={} increase={:.2}x",
        cmp.kb_name,
        cmp.kb_entries,
        cmp.fonduer_entries,
        cmp.coverage,
        cmp.accuracy,
        cmp.new_correct,
        cmp.increase
    );

    // KB maintenance: a newly published paper arrives. Upserting it only
    // recomputes that paper's candidate/feature/label slices — the other
    // 60 papers are served from the per-document shard cache.
    let new_paper = generate_genomics(&GenomicsConfig {
        n_docs: 61,
        ..Default::default()
    })
    .corpus
    .doc(fonduer_datamodel::DocId::from_usize(60))
    .clone();
    let name = new_paper.name.clone();
    session.upsert_document(new_paper).expect("name is new");
    let refreshed = session.output().expect("refresh run");
    println!(
        "\nafter upserting {name:?}: {} papers, F1={:.2}, recomputed_docs={}",
        session.corpus().len(),
        refreshed.metrics.f1,
        session.recomputed_docs(),
    );
}
