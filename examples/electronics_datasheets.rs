//! The ELECTRONICS application end-to-end (paper §5.1, Figure 1): generate
//! a corpus of transistor datasheets, run the full Fonduer pipeline on all
//! four rating relations, and report held-out quality plus a slice of the
//! output knowledge base.
//!
//! Run with: `cargo run --release --example electronics_datasheets`

use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_synth::{generate_electronics, ElectronicsConfig};

fn main() {
    let ds = generate_electronics(&ElectronicsConfig {
        n_docs: 80,
        ..Default::default()
    });
    println!(
        "ELECTRONICS corpus: {} datasheets, {} words, {} gold tuples",
        ds.corpus.len(),
        ds.corpus.word_count(),
        ds.gold.total()
    );

    let cfg = PipelineConfig::default();
    let mut f1_sum = 0.0;
    for task in electronics::tasks(&ds) {
        let rel = task.extractor.schema.name.clone();
        let mut session = PipelineSession::new(&ds.corpus, &ds.gold, &task, cfg.clone())
            .expect("session inputs are valid");
        let out = session.output().expect("pipeline run");
        println!(
            "\n[{rel}] candidates={} coverage={:.2} | P={:.2} R={:.2} F1={:.2} (held-out, {} docs)",
            out.candidates.len(),
            out.label_coverage,
            out.metrics.precision,
            out.metrics.recall,
            out.metrics.f1,
            out.test_docs.len(),
        );
        f1_sum += out.metrics.f1;
        if rel == "has_collector_current" {
            println!("sample KB rows:");
            for line in out.kb.to_tsv().lines().take(6) {
                println!("  {line}");
            }
            // Threshold sweep on the live session: everything up to
            // inference is cached, only evaluation recomputes.
            println!("threshold sweep (cached marginals):");
            for t in [0.3, 0.5, 0.7, 0.9] {
                session.set_threshold(t).expect("threshold in [0, 1]");
                let m = *session.evaluate().expect("evaluate");
                println!(
                    "  t={t:.1}  P={:.2} R={:.2} F1={:.2}",
                    m.precision, m.recall, m.f1
                );
            }
            // Corpus mutation on the live session: retire the last
            // datasheet and re-evaluate. The per-document shard caches
            // serve every surviving document, so the re-run only pays
            // for the merge and downstream train/infer.
            session
                .set_threshold(cfg.threshold)
                .expect("default is valid");
            let last = fonduer_datamodel::DocId::from_usize(session.corpus().len() - 1);
            let gone = session.remove_document(last).expect("id is in range");
            let m = *session.evaluate().expect("evaluate after removal");
            println!(
                "after remove_document({:?}): {} docs remain, F1={:.2}, recomputed_docs={}",
                gone.name,
                session.corpus().len(),
                m.f1,
                session.recomputed_docs(),
            );
        }
    }
    println!("\naverage F1 over 4 relations: {:.2}", f1_sum / 4.0);
}
