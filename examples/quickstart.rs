//! Quickstart: the complete Fonduer workflow on a handful of inline
//! datasheets — parse richly formatted documents, declare matchers and
//! labeling functions, train the multimodal model, and print the extracted
//! knowledge base.
//!
//! Run with: `cargo run --example quickstart`

use fonduer::prelude::*;
use fonduer_core::domains::{self};

/// Three tiny datasheets. The relation (part, collector current) is
/// document-level: parts live in the header, currents in a table.
const SHEETS: &[(&str, &str)] = &[
    (
        "smbt3904",
        r#"<h1>SMBT3904...MMBT3904</h1>
           <p>NPN Silicon Switching Transistors.</p>
           <table>
             <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
             <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
             <tr><td>Junction temperature</td><td>Tj</td><td>150</td><td>°C</td></tr>
           </table>"#,
    ),
    (
        "bc547",
        r#"<h1>BC547</h1>
           <p>General purpose NPN transistor.</p>
           <table>
             <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
             <tr><td>Collector current</td><td>IC</td><td>100</td><td>mA</td></tr>
             <tr><td>DC current gain</td><td>hFE</td><td>300</td><td></td></tr>
           </table>"#,
    ),
    (
        "pn2222",
        r#"<h1>PN2222A</h1>
           <p>Small signal switching transistor.</p>
           <table>
             <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
             <tr><td>Collector current</td><td>IC</td><td>600</td><td>mA</td></tr>
             <tr><td>Storage temperature</td><td>Tstg</td><td>150</td><td>°C</td></tr>
           </table>"#,
    ),
];

fn main() {
    // Phase 1 — KBC initialization: parse documents into the multimodal
    // data model (structure + a simulated visual rendering).
    let mut corpus = Corpus::new("quickstart");
    for (name, html) in SHEETS {
        corpus.add(parse_document(
            name,
            html,
            DocFormat::Pdf,
            &Default::default(),
        ));
    }
    println!(
        "parsed {} documents, {} sentences, {} words",
        corpus.len(),
        corpus.sentence_count(),
        corpus.word_count()
    );

    // Phase 2 — candidate generation: matchers + document-level scope.
    let parts = ["SMBT3904", "MMBT3904", "BC547", "PN2222A", "2N3906"];
    let extractor = CandidateExtractor::new(
        RelationSchema::new("has_collector_current", &["part", "current"]),
        vec![
            MentionType::new("part", Box::new(DictionaryMatcher::new(parts))),
            MentionType::new("current", Box::new(NumberRangeMatcher::new(100.0, 995.0))),
        ],
    )
    .with_scope(ContextScope::Document);

    // Phase 3 — supervision: two labeling functions over tabular context
    // (Example 3.5 style), no hand labels.
    let lfs = vec![
        LabelingFunction::new("collector_in_row", Modality::Tabular, |doc, cand| {
            let row = domains::row_words(doc, domains::arg(cand, 1));
            if row.is_empty() {
                ABSTAIN
            } else if fonduer_nlp::contains_word(&row, "collector") {
                TRUE
            } else {
                FALSE
            }
        }),
        LabelingFunction::new("gain_row", Modality::Tabular, |doc, cand| {
            let row = domains::row_words(doc, domains::arg(cand, 1));
            if fonduer_nlp::contains_word(&row, "gain") {
                FALSE
            } else {
                ABSTAIN
            }
        }),
    ];

    // Train + classify: every document is a training document here (demo).
    let task = Task { extractor, lfs };
    // With only a handful of candidates, sparse logistic regression over the
    // multimodal feature library is the right-sized learner. The builder
    // validates field domains (rejecting e.g. `train_frac: 1.7`).
    let cfg = PipelineConfig::builder()
        .train_frac(1.0)
        .learner(Learner::LogReg)
        .features(FeatureConfig::all())
        .build()
        .expect("quickstart config is valid");
    let gold = GoldKb::new(); // no gold: we just print the KB
    let mut session =
        PipelineSession::new(&corpus, &gold, &task, cfg).expect("session inputs are valid");
    let out = session.output().expect("quickstart run");

    println!(
        "\n{} candidates, LF coverage {:.0}%",
        out.candidates.len(),
        out.label_coverage * 100.0
    );
    println!("\nExtracted knowledge base:\n{}", out.kb.to_tsv());

    // A fourth datasheet arrives later: upsert it into the live session.
    // The original three documents are served from the per-document shard
    // cache — only the new sheet's candidates/features/labels compute.
    let new_sheet = parse_document(
        "2n3906",
        r#"<h1>2N3906</h1>
           <p>PNP general purpose amplifier.</p>
           <table>
             <tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
             <tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
           </table>"#,
        DocFormat::Pdf,
        &Default::default(),
    );
    session.upsert_document(new_sheet).expect("name is new");
    let refreshed = session.output().expect("refresh run");
    println!(
        "after upsert: {} documents, recomputed_docs={}",
        session.corpus().len(),
        session.recomputed_docs()
    );
    println!("\nUpdated knowledge base:\n{}", refreshed.kb.to_tsv());

    fonduer::observe::emit_report();
}
