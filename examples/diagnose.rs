//! Diagnostic harness: dissect one relation of one domain — labeling-
//! function empirical quality, generative-label quality, and end-to-end
//! metrics. The error-analysis loop of paper §3.3, as a tool.
//!
//! Usage: `cargo run --release --example diagnose -- <domain> <relation>`
//! e.g. `cargo run --release --example diagnose -- electronics max_ce_voltage`

use fonduer::prelude::*;
use fonduer_core::domains::{ads, electronics, genomics, paleo};
use fonduer_core::pipeline::is_train_doc;
use fonduer_core::Task;
use fonduer_synth::Domain;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let domain = args.get(1).map(|s| s.as_str()).unwrap_or("electronics");
    let relation = args.get(2).map(|s| s.as_str()).unwrap_or("max_ce_voltage");
    let (ds, task) = build(domain, relation);
    let cfg = PipelineConfig::default();

    let cands = task.extractor.extract(&ds.corpus);
    let gold = ds.gold.tuples(relation);
    let is_gold = |c: &Candidate| {
        let d = ds.corpus.doc(c.doc);
        gold.contains(&(d.name.clone(), c.arg_texts(d)))
    };
    let train: Vec<Candidate> = cands
        .candidates
        .iter()
        .filter(|c| is_train_doc(&ds.corpus.doc(c.doc).name, cfg.train_frac, cfg.seed))
        .cloned()
        .collect();
    let gold_flags: Vec<bool> = train.iter().map(is_gold).collect();
    println!(
        "domain={domain} relation={relation}: {} candidates ({} train, {} train-gold), {} gold tuples",
        cands.len(),
        train.len(),
        gold_flags.iter().filter(|&&b| b).count(),
        gold.len()
    );

    let subset = fonduer::candidates::CandidateSet {
        schema: cands.schema.clone(),
        candidates: train.clone(),
    };
    let refs: Vec<&LabelingFunction> = task.lfs.iter().collect();
    let lm = LabelMatrix::apply(&refs, &ds.corpus, &subset);
    let lf_names: Vec<String> = task.lfs.iter().map(|lf| lf.name.clone()).collect();
    let diag = LfDiagnostics::compute(&lf_names, &lm, Some(&gold_flags));
    println!("\nLF diagnostics (coverage / overlap / conflict / empirical accuracy):");
    print!("{}", diag.to_text());

    let gm = GenerativeModel::fit(&lm, &GenerativeOptions::default());
    let marg = gm.predict(&lm);
    let (mut tp, mut fp, mut fn_) = (0, 0, 0);
    for (i, &m) in marg.iter().enumerate() {
        match (m > 0.5, gold_flags[i]) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    println!(
        "\ngenerative labels: prior={:.2} tp={tp} fp={fp} fn={fn_}",
        gm.prior
    );
    for (j, lf) in task.lfs.iter().enumerate() {
        println!(
            "  fit {:<50} acc={:.2} bp={:.2} bn={:.2}",
            lf.name, gm.accuracies[j], gm.prop_pos[j], gm.prop_neg[j]
        );
    }

    // End-to-end through a staged session; the LF table above is the manual
    // view of what `session.supervise()` caches.
    let mut session = PipelineSession::new(&ds.corpus, &ds.gold, &task, cfg.clone())
        .expect("session inputs are valid");
    let out = session.output().expect("pipeline run");
    println!("session stages: {}", session.stats().to_line());
    println!(
        "\nend-to-end: P={:.2} R={:.2} F1={:.2} ({} predicted tuples in KB)",
        out.metrics.precision,
        out.metrics.recall,
        out.metrics.f1,
        out.kb.len()
    );
    // Show a few errors on the held-out split, reading documents through
    // the session's own (possibly upserted) corpus view.
    let mut shown = 0;
    for (c, &p) in out.candidates.candidates.iter().zip(&out.marginals) {
        let d = session.corpus().doc(c.doc);
        if !out.test_docs.contains(&d.name) {
            continue;
        }
        let g = is_gold(c);
        if (p >= cfg.threshold) != g && shown < 8 {
            shown += 1;
            println!(
                "  {} p={p:.2} gold={g} args={:?} value-sentence='{}'",
                if g { "MISS" } else { "FP  " },
                c.arg_texts(d),
                d.sentence(c.mentions[1].sentence).text(d)
            );
        }
    }

    // Active-learning triage (paper Appendix D): which candidates would a
    // user label next? Density-weighted uncertainty reads the shared CSR
    // feature matrix zero-copy — no per-candidate feature strings.
    let feats = session.featurize().expect("featurization is cached");
    let marg64: Vec<f64> = out.marginals.iter().map(|&m| f64::from(m)).collect();
    let ranked = fonduer::supervision::density_weighted_sampling(&feats.matrix, &marg64);
    println!("\nactive-learning triage (density-weighted uncertainty), top 5:");
    for r in ranked.iter().take(5) {
        let c = &out.candidates.candidates[r.index];
        let d = ds.corpus.doc(c.doc);
        println!(
            "  #{} score={:.3} p={:.2} args={:?}",
            r.index,
            r.score,
            out.marginals[r.index],
            c.arg_texts(d)
        );
    }

    // Flight-recorder sample: why did the last few candidates score the way
    // they did? (Full dump flows through FONDUER_TRACE=json.)
    let recs = fonduer::observe::provenance::records();
    if !recs.is_empty() {
        println!(
            "\nprovenance: {} records retained (cap {}), sample:",
            recs.len(),
            fonduer::observe::provenance::capacity()
        );
        for r in recs.iter().rev().take(3) {
            let votes: String = if r.in_train {
                r.lf_votes
                    .iter()
                    .map(|v| match v {
                        1 => '+',
                        -1 => '-',
                        _ => '.',
                    })
                    .collect()
            } else {
                "(test split)".into()
            };
            println!(
                "  {}#{} args={:?} votes={votes} features(t/s/tab/v)={}/{}/{}/{} p={:.2}",
                r.doc,
                r.candidate_index,
                r.mentions
                    .iter()
                    .map(|m| m.text.as_str())
                    .collect::<Vec<_>>(),
                r.feature_counts[0],
                r.feature_counts[1],
                r.feature_counts[2],
                r.feature_counts[3],
                r.marginal
            );
            if !r.feature_sample.is_empty() {
                println!("    sample: {}", r.feature_sample.join(" "));
            }
        }
    }

    fonduer::observe::emit_report();
}

fn build(domain: &str, relation: &str) -> (SynthDataset, Task) {
    match domain {
        "electronics" => {
            let ds = Domain::Electronics.generate(60, 7);
            let task = Task {
                extractor: electronics::extractor(&ds, relation, ContextScope::Document)
                    .with_throttler(electronics::default_throttler(match relation {
                        "has_collector_current" => "has_collector_current",
                        "max_ce_voltage" => "max_ce_voltage",
                        "max_cb_voltage" => "max_cb_voltage",
                        _ => "max_eb_voltage",
                    })),
                lfs: electronics::lfs(relation),
            };
            (ds, task)
        }
        "ads" => {
            let ds = Domain::Ads.generate(150, 11);
            let task = Task {
                extractor: ads::extractor(&ds, relation, ContextScope::Document),
                lfs: ads::lfs(match relation {
                    "ad_price" => "ad_price",
                    "ad_location" => "ad_location",
                    "ad_age" => "ad_age",
                    _ => "ad_name",
                }),
            };
            (ds, task)
        }
        "paleo" => {
            let ds = Domain::Paleo.generate(40, 13);
            let task = Task {
                extractor: paleo::extractor(&ds, relation, ContextScope::Document),
                lfs: paleo::lfs(relation),
            };
            (ds, task)
        }
        "genomics" => {
            let ds = Domain::Genomics.generate(60, 17);
            let task = Task {
                extractor: genomics::extractor(&ds, relation, ContextScope::Document),
                lfs: genomics::lfs(match relation {
                    "snp_phenotype" => "snp_phenotype",
                    "gene_phenotype" => "gene_phenotype",
                    "snp_population" => "snp_population",
                    _ => "snp_platform",
                }),
            };
            (ds, task)
        }
        other => panic!("unknown domain {other}"),
    }
}
