//! The ADVERTISEMENTS application (paper §5.1): heterogeneous web-ad
//! layouts, with an oracle comparison showing why document-level extraction
//! beats sentence- and table-scope IE (the Table 2 shape).
//!
//! Run with: `cargo run --release --example ads_extraction`

use fonduer::prelude::*;
use fonduer_core::domains::ads;
use fonduer_synth::{generate_ads, AdsConfig};

fn main() {
    let ds = generate_ads(&AdsConfig {
        n_docs: 150,
        ..Default::default()
    });
    println!(
        "ADS corpus: {} ads across simulated layout families, {} gold tuples",
        ds.corpus.len(),
        ds.gold.total()
    );

    // Oracle upper bounds at each scope (assume a perfect filter).
    println!("\noracle upper bounds for ad_price:");
    let gold: std::collections::BTreeSet<_> = ds.gold.tuples("ad_price").iter().cloned().collect();
    for (label, scope) in [
        ("Text (sentence)", ContextScope::Sentence),
        ("Table (strict)", ContextScope::TableStrict),
        ("Document", ContextScope::Document),
    ] {
        let ex = ads::extractor(&ds, "ad_price", scope);
        let reach = reachable_tuples(&ds.corpus, &ex);
        let m = oracle_upper_bound(&reach, &gold);
        println!("  {label:<18} recall={:.2} F1={:.2}", m.recall, m.f1);
    }

    // Full pipeline on every relation, via staged sessions.
    let cfg = PipelineConfig::builder()
        .build()
        .expect("default config is valid");
    println!("\nFonduer end-to-end:");
    for task in ads::tasks(&ds) {
        let rel = task.extractor.schema.name.clone();
        let mut session = PipelineSession::new(&ds.corpus, &ds.gold, &task, cfg.clone())
            .expect("session inputs are valid");
        let metrics = *session.evaluate().expect("pipeline run");
        println!(
            "  {rel:<14} P={:.2} R={:.2} F1={:.2} ({} docs)",
            metrics.precision,
            metrics.recall,
            metrics.f1,
            session.corpus().len()
        );
    }
}
