//! Incremental corpora: upsert one document into a 512-document corpus and
//! re-run — the per-document shard cache serves every untouched document,
//! so only the upserted document's candidate/feature/label slices
//! recompute (plus the cheap merge and downstream train/infer).
//!
//! Prints machine-checkable lines (`recomputed_docs=...`) that CI greps.
//!
//! Run with: `cargo run --release --example upsert`

use fonduer::prelude::*;
use fonduer_core::domains::electronics;
use fonduer_datamodel::DocId;

fn main() {
    let n_docs = 512;
    let ds = Domain::Electronics.generate(n_docs, 7);
    // A revised edition of one datasheet: same name (`datasheet_0003`),
    // different content — what a corpus refresh delivers.
    let revised = Domain::Electronics
        .generate(n_docs, 8)
        .corpus
        .doc(DocId::from_usize(3))
        .clone();

    let relation = "has_collector_current";
    let extractor = electronics::extractor(&ds, relation, ContextScope::Document)
        .with_throttler(electronics::default_throttler(relation));
    let lfs = electronics::lfs(relation);
    // Hashed features keep the downstream logistic-regression train fast
    // enough for CI; the shard cache is orthogonal to the representation.
    let cfg = PipelineConfig::builder()
        .learner(Learner::LogReg)
        .features(FeatureConfig::all().with_hashing(12))
        .build()
        .expect("config is valid");

    let mut session = PipelineSession::from_parts(&ds.corpus, &ds.gold, &extractor, &lfs, cfg)
        .expect("session inputs are valid");

    let cold = session.output().expect("cold run");
    let cold_upstream =
        cold.timings.candgen_ms() + cold.timings.featurize_ms() + cold.timings.supervise_ms();
    println!(
        "cold run over {} docs: {} candidates, F1={:.2}, total={:.1}ms, recomputed_docs={}",
        session.corpus().len(),
        cold.candidates.len(),
        cold.metrics.f1,
        cold.timings.total_ms(),
        session.recomputed_docs(),
    );

    // Upsert the revision: only datasheet_0003's shards miss on the re-run.
    let name = revised.name.clone();
    let id = session.upsert_document(revised).expect("name is unique");
    let warm = session.output().expect("warm run");
    let warm_upstream =
        warm.timings.candgen_ms() + warm.timings.featurize_ms() + warm.timings.supervise_ms();
    println!(
        "upserted {name:?} at position {}; warm re-run total={:.1}ms",
        id.index(),
        warm.timings.total_ms(),
    );
    let stats = session.shard_stats();
    println!(
        "shard cache: hit={} miss={} evict={} cached={}",
        stats.hits, stats.misses, stats.evicts, stats.cached,
    );

    // The shard cache accelerates the per-document stages (candgen,
    // featurize, LF application); train/infer rerun in full either way, so
    // compare the upstream stage times rather than end-to-end wall clock.
    let speedup = cold_upstream / warm_upstream.max(1e-6);
    println!(
        "upstream stages (candgen+featurize+supervise): cold={cold_upstream:.1}ms \
         warm={warm_upstream:.1}ms ({speedup:.1}x)"
    );

    // Removing an id past the corpus end is a typed error, not a panic.
    let bad = DocId::from_usize(session.corpus().len());
    match session.remove_document(bad) {
        Err(PipelineError::DocNotFound { doc, n_docs }) => {
            println!("remove_document({doc:?}) -> DocNotFound (corpus has {n_docs} docs)");
        }
        other => panic!("expected DocNotFound, got {other:?}"),
    }

    // CI greps this line: a single-document upsert recomputes one document.
    println!("recomputed_docs={}", session.recomputed_docs());
    assert_eq!(
        session.recomputed_docs(),
        1,
        "warm upsert must recompute exactly the upserted document"
    );
}
